//! CLI for the continuous-benchmark harness (see `hbm_bench::harness`).
//!
//! Generate the benchmark document:
//!
//! ```text
//! cargo run --release -p hbm-bench --bin bench_harness -- --out BENCH_9.json
//! ```
//!
//! Flags:
//! - `--out <path>`: write the JSON document (default `BENCH_9.json`)
//! - `--scale small|medium|both`: cell grid to run (default `both`)
//! - `--check <baseline.json>`: after measuring, gate against a baseline —
//!   both the ticks/sec gate and the `setup_seconds` gate (the latter at
//!   `--setup-tolerance`, skipped for baselines predating schema 3)
//! - `--lockstep-gate`: enforce the self-relative lockstep-speedup gate
//!   (`check_lockstep_speedup` at the 1.5x floor) — exit 1 on a `Fail`
//!   verdict. Without the flag the verdict is still computed, embedded in
//!   the document and printed, but advisory
//! - `--tolerance <frac>`: allowed ticks/sec drop for `--check` (default 0.25)
//! - `--setup-tolerance <frac>`: allowed per-cell setup-time growth for
//!   `--check` (default 0.30)
//! - `--pre-pr <path>`: a harness JSON measured on the pre-optimization
//!   engine (same machine); embeds its fig3 ticks/sec and the speedup
//!   this build achieves over it into the output's `pre_pr_baseline`.
//!   Defaults to `results/bench_pre_pr.json` when that file exists
//!   (pass `--pre-pr none` to suppress)
//! - `--min-wall <secs>`: minimum measurement time per cell (default 0.2)
//! - `--passes <n>`: measure the full grid `n` times and keep each cell's
//!   best pass (default 3). Shared hosts drift in CPU speed on a scale of
//!   seconds-to-minutes — longer than one cell's measurement window — so
//!   best-of-passes is what makes numbers comparable across runs; the
//!   calibration score is likewise sampled once per pass and the maximum
//!   is recorded.
//!
//! Exit status: 0 on success, 1 on a regression (or usage error), so CI
//! can gate directly on this binary.

use hbm_bench::harness::{
    calibration_score, cells, check_lockstep_speedup, check_regression, check_setup_regression,
    group_ticks_per_sec, lockstep_grid_comparison, measure, parse_calibration, render_json,
    sweep_grid_comparison, BenchScale, LockstepGridComparison, LockstepVerdict,
    SweepGridComparison, LOCKSTEP_MIN_SPEEDUP,
};

fn usage() -> ! {
    eprintln!(
        "usage: bench_harness [--out FILE] [--scale small|medium|both] \
         [--check BASELINE.json] [--lockstep-gate] [--tolerance FRAC] \
         [--setup-tolerance FRAC] [--pre-pr PRE.json] [--min-wall SECS] [--passes N]"
    );
    std::process::exit(1);
}

fn main() {
    const PRE_PR_DEFAULT: &str = "results/bench_pre_pr.json";

    let mut out_path = String::from("BENCH_9.json");
    let mut scale_arg = String::from("both");
    let mut check_path: Option<String> = None;
    let mut pre_pr_path: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut setup_tolerance = 0.30f64;
    let mut min_wall = 0.2f64;
    let mut passes = 3usize;
    let mut lockstep_gate = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--out" => out_path = val(&mut args),
            "--scale" => scale_arg = val(&mut args),
            "--check" => check_path = Some(val(&mut args)),
            "--lockstep-gate" => lockstep_gate = true,
            "--pre-pr" => pre_pr_path = Some(val(&mut args)),
            "--tolerance" => tolerance = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--setup-tolerance" => {
                setup_tolerance = val(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--min-wall" => min_wall = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--passes" => {
                passes = val(&mut args).parse().unwrap_or_else(|_| usage());
                if passes == 0 {
                    usage();
                }
            }
            _ => usage(),
        }
    }

    if pre_pr_path.is_none() && std::path::Path::new(PRE_PR_DEFAULT).exists() {
        pre_pr_path = Some(PRE_PR_DEFAULT.to_string());
    }
    if pre_pr_path.as_deref() == Some("none") {
        pre_pr_path = None;
    }

    let scales: Vec<BenchScale> = match scale_arg.as_str() {
        "both" => vec![BenchScale::Small, BenchScale::Medium],
        s => vec![BenchScale::parse(s).unwrap_or_else(|| usage())],
    };

    // Best-of-passes: each pass re-measures calibration and every cell;
    // a cell keeps its fastest pass. One pass only ever *raises* recorded
    // throughput, so more passes monotonically tighten the estimate of
    // peak machine speed for both the cells and the calibration score.
    let mut calibration = 0.0f64;
    let mut results: Vec<hbm_bench::harness::CellResult> = Vec::new();
    for pass in 1..=passes {
        eprintln!("pass {pass}/{passes}: calibrating machine speed...");
        let c = calibration_score();
        calibration = calibration.max(c);
        eprintln!("calibration_score: {c:.0} iters/sec");
        let mut cell_no = 0usize;
        for scale in &scales {
            for spec in cells(*scale) {
                // Namespace medium cells so both scales coexist in one file.
                let id = if *scale == BenchScale::Medium {
                    format!("medium/{}", spec.id)
                } else {
                    spec.id.clone()
                };
                let mut r = measure(&spec, min_wall);
                r.id = id;
                eprintln!(
                    "{:40} {:>12.0} ticks/s  ({} ticks, {:.4}s run, {:.6}s setup)",
                    r.id, r.ticks_per_sec, r.ticks, r.wall_seconds, r.setup_seconds
                );
                if pass == 1 {
                    results.push(r);
                } else {
                    // Best-of-passes per metric: the fastest pass keeps the
                    // throughput fields, while setup keeps its own minimum
                    // (the two bests need not come from the same pass).
                    let best_setup = results[cell_no].setup_seconds.min(r.setup_seconds);
                    if r.ticks_per_sec > results[cell_no].ticks_per_sec {
                        results[cell_no] = r;
                    }
                    results[cell_no].setup_seconds = best_setup;
                }
                cell_no += 1;
            }
        }
    }

    let pre_pr = pre_pr_path.map(|p| {
        let json =
            std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read --pre-pr {p}: {e}"));
        let cells = hbm_bench::harness::parse_cells(&json);
        // Recompute the fig3 aggregate from the pre-PR document's cells to
        // tolerate hand-edited summaries: pool ticks over wall via the
        // recorded per-cell rates is not possible from (id, tps) alone, so
        // trust its recorded summary line first, cell mean as fallback.
        let fig3 = extract_summary_fig3(&json).unwrap_or_else(|| {
            let f3: Vec<f64> = cells
                .iter()
                .filter(|c| c.id.contains("fig3/"))
                .map(|c| c.ticks_per_sec)
                .collect();
            f3.iter().sum::<f64>() / f3.len().max(1) as f64
        });
        let calib = parse_calibration(&json).unwrap_or(calibration);
        (fig3, calib)
    });

    // The headline tentpole measurement: owned-vs-shared sweep grid, once
    // per scale (single-threaded inside, so one run is representative).
    let sweep_grids: Vec<SweepGridComparison> = scales
        .iter()
        .map(|&s| {
            eprintln!("sweep-grid comparison ({})...", s.name());
            let g = sweep_grid_comparison(s);
            eprintln!(
                "sweep-grid {}: owned {:.3}s, shared {:.3}s, speedup {:.2}x, \
                 peak-RSS delta {} -> {} bytes, checksums {}",
                g.scale,
                g.owned_wall_seconds,
                g.shared_wall_seconds,
                g.speedup,
                g.owned_peak_rss_delta_bytes,
                g.shared_peak_rss_delta_bytes,
                if g.checksum_match { "match" } else { "DIVERGE" },
            );
            g
        })
        .collect();

    // The lockstep tentpole measurement: the same grid run scalar (the PR
    // 4 shared path), cell-major (the PR 6 reference executor), and
    // phase-major (the production executor), all sequential. A checksum
    // divergence here is a correctness bug, not noise, and fails the run
    // outright — with the triage report locating the first divergent
    // (cell, tick, phase).
    let lockstep_grids: Vec<LockstepGridComparison> = scales
        .iter()
        .map(|&s| {
            eprintln!("lockstep-grid comparison ({})...", s.name());
            let g = lockstep_grid_comparison(s);
            eprintln!(
                "lockstep-grid {}: scalar {:.3}s, cell-major {:.3}s ({:.2}x), \
                 phase-major {:.3}s ({:.2}x) over {} batches, checksums {}",
                g.scale,
                g.scalar_wall_seconds,
                g.cell_major_wall_seconds,
                g.cell_major_speedup,
                g.phase_major_wall_seconds,
                g.phase_major_speedup,
                g.batches,
                if g.checksum_match { "match" } else { "DIVERGE" },
            );
            g
        })
        .collect();

    let scale_names = scales
        .iter()
        .map(|s| s.name())
        .collect::<Vec<_>>()
        .join("+");
    let json = render_json(
        &scale_names,
        calibration,
        &results,
        pre_pr,
        &sweep_grids,
        &lockstep_grids,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!(
        "wrote {out_path}  (fig3 aggregate: {:.0} ticks/s)",
        group_ticks_per_sec(&results, "fig3")
    );

    if lockstep_grids.iter().any(|g| !g.checksum_match) {
        // Divergence triage (satellite of the phase-major tentpole): dump
        // the first divergent (cell, tick, phase) with both engines'
        // state instead of just exiting 1.
        for g in lockstep_grids.iter().filter(|g| !g.checksum_match) {
            match &g.divergence {
                Some(report) => eprintln!("lockstep divergence triage ({}):\n{report}", g.scale),
                None => eprintln!(
                    "lockstep divergence triage ({}): no divergent batch localized — \
                     signatures differ but event streams match",
                    g.scale
                ),
            }
        }
        eprintln!("lockstep gate FAIL: batched trajectories diverged from scalar");
        std::process::exit(1);
    }

    // The self-relative speedup gate: phase-major must beat scalar by
    // >1.5x on the judged grid, self-skipping when the measurement cannot
    // be honest. The verdict is always embedded in the document; the exit
    // code only bites under --lockstep-gate.
    let verdict = check_lockstep_speedup(&lockstep_grids, LOCKSTEP_MIN_SPEEDUP);
    match &verdict {
        LockstepVerdict::Pass {
            scale,
            speedup,
            scalar_wall_seconds,
        } => eprintln!(
            "lockstep speedup gate PASS: {scale} phase-major {speedup:.2}x vs scalar \
             over {scalar_wall_seconds:.3}s (floor {LOCKSTEP_MIN_SPEEDUP}x)"
        ),
        LockstepVerdict::Fail(line) => eprintln!(
            "lockstep speedup gate {}: {line}",
            if lockstep_gate {
                "FAIL"
            } else {
                "fail (advisory)"
            }
        ),
        LockstepVerdict::Skipped(reason) => {
            eprintln!("lockstep speedup gate SKIPPED: {reason}")
        }
    }
    if lockstep_gate && matches!(verdict, LockstepVerdict::Fail(_)) {
        std::process::exit(1);
    }

    if let Some(base_path) = check_path {
        let baseline = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("cannot read --check baseline {base_path}: {e}"));
        let mut failures = check_regression(&json, &baseline, tolerance);
        failures.extend(check_setup_regression(&json, &baseline, setup_tolerance));
        if failures.is_empty() {
            eprintln!(
                "regression gate PASS (throughput tolerance {:.0}%, setup tolerance {:.0}%)",
                tolerance * 100.0,
                setup_tolerance * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("{f}");
            }
            eprintln!("regression gate FAIL: {} cell(s) regressed", failures.len());
            std::process::exit(1);
        }
    }
}

/// Pulls `"fig3_ticks_per_sec": N` out of a harness document's summary.
fn extract_summary_fig3(json: &str) -> Option<f64> {
    let line = json
        .lines()
        .find(|l| l.contains("\"fig3_ticks_per_sec\""))?;
    let start = line.find(':')? + 1;
    line[start..].trim().trim_end_matches(',').parse().ok()
}
