//! Bench for the Lemma 1 transformation: per-access cost of the
//! transformed cache vs the fully-associative reference and the plain
//! direct-mapped baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_assoc::transform::{
    measure_overhead, Discipline, FullyAssociative, PlainDirectMapped, TransformedCache,
};
use hbm_traces::synthetic::zipf_trace;
use std::hint::black_box;

fn stream() -> Vec<u64> {
    zipf_trace(2000, 100_000, 1.0, 3)
        .into_iter()
        .map(|p| p as u64)
        .collect()
}

fn bench_assoc(c: &mut Criterion) {
    let s = stream();
    let k = 512;

    // Shape check: transformation replicates the reference at O(1) cost.
    let o = measure_overhead(&s[..20_000], k, Discipline::Lru, 1);
    assert_eq!(o.reference_misses, o.transformed_misses);
    assert!(o.accesses_per_access < 8.0);

    let mut group = c.benchmark_group("assoc_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(s.len() as u64));
    group.bench_function(BenchmarkId::new("model", "fully_associative"), |b| {
        b.iter(|| {
            let mut cache = FullyAssociative::new(k, Discipline::Lru);
            for &p in &s {
                black_box(cache.access(p));
            }
            cache.misses
        })
    });
    group.bench_function(BenchmarkId::new("model", "transformed"), |b| {
        b.iter(|| {
            let mut cache = TransformedCache::new(k, Discipline::Lru, 1);
            for &p in &s {
                black_box(cache.access(p));
            }
            cache.misses
        })
    });
    group.bench_function(BenchmarkId::new("model", "plain_direct"), |b| {
        b.iter(|| {
            let mut cache = PlainDirectMapped::new(k, 1);
            for &p in &s {
                black_box(cache.access(p));
            }
            cache.misses
        })
    });
    group.finish();
}

criterion_group!(benches, bench_assoc);
criterion_main!(benches);
