//! Ablation benches for the design choices DESIGN.md §7 calls out:
//! replacement policy, channel count (Theorem 3), and trace granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbm_bench::{contended, spgemm_spec};
use hbm_core::{ArbitrationKind, ReplacementKind, SimBuilder};
use hbm_traces::{TraceOptions, WorkloadSpec};
use std::hint::black_box;

fn bench_replacement(c: &mut Criterion) {
    let (w, k) = contended(spgemm_spec());
    let mut group = c.benchmark_group("ablation_replacement");
    group.sample_size(10);
    for rep in ReplacementKind::ALL {
        group.bench_function(BenchmarkId::from_parameter(rep.to_string()), |b| {
            b.iter(|| {
                black_box(
                    SimBuilder::new()
                        .hbm_slots(k)
                        .channels(1)
                        .arbitration(ArbitrationKind::Priority)
                        .replacement(rep)
                        .seed(42)
                        .run(&w),
                )
                .makespan
            })
        });
    }
    group.finish();
}

fn bench_channels(c: &mut Criterion) {
    let (w, k) = contended(spgemm_spec());
    let mut group = c.benchmark_group("ablation_channels");
    group.sample_size(10);
    for q in 1..=8usize {
        group.bench_function(BenchmarkId::from_parameter(q), |b| {
            b.iter(|| {
                black_box(
                    SimBuilder::new()
                        .hbm_slots(k)
                        .channels(q)
                        .arbitration(ArbitrationKind::Priority)
                        .seed(42)
                        .run(&w),
                )
                .makespan
            })
        });
    }
    group.finish();
}

fn bench_collapse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_collapse");
    group.sample_size(10);
    let spec = WorkloadSpec::Sort {
        algo: hbm_traces::SortAlgo::Introsort,
        n: 8_000,
    };
    for collapse in [false, true] {
        let opts = TraceOptions {
            collapse,
            ..TraceOptions::default()
        };
        let w = spec.workload(8, 42, opts);
        let k = (2 * w.trace(0).unique_pages()).max(16);
        group.bench_function(
            BenchmarkId::from_parameter(if collapse { "collapsed" } else { "raw" }),
            |b| {
                b.iter(|| {
                    black_box(
                        SimBuilder::new()
                            .hbm_slots(k)
                            .channels(1)
                            .arbitration(ArbitrationKind::Priority)
                            .seed(42)
                            .run(&w),
                    )
                    .makespan
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_replacement, bench_channels, bench_collapse);
criterion_main!(benches);
