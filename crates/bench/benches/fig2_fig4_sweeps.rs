//! Benches for Figures 2 and 4: FIFO vs (Dynamic) Priority on the two
//! instrumented workloads, in the contended regime where the policies
//! diverge. Each group times one policy cell and asserts the figure's
//! shape once up front.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbm_bench::{contended, run, sort_spec, spgemm_spec, verify_priority_wins};
use hbm_core::ArbitrationKind;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for (name, spec) in [("spgemm", spgemm_spec()), ("sort", sort_spec())] {
        let (w, k) = contended(spec);
        // Shape check (Figure 2's high-p half): Priority dominates here.
        let fifo = run(&w, k, ArbitrationKind::Fifo);
        let prio = run(&w, k, ArbitrationKind::Priority);
        verify_priority_wins(&fifo, &prio, 1.2);
        for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
            group.bench_with_input(BenchmarkId::new(name, arb.label()), &arb, |b, &arb| {
                b.iter(|| black_box(run(&w, k, arb)).makespan)
            });
        }
    }
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for (name, spec) in [("spgemm", spgemm_spec()), ("sort", sort_spec())] {
        let (w, k) = contended(spec);
        let dynamic = ArbitrationKind::DynamicPriority {
            period: 10 * k as u64,
        };
        // Shape check (Figure 4): Dynamic Priority also beats FIFO here.
        let fifo = run(&w, k, ArbitrationKind::Fifo);
        let dyn_r = run(&w, k, dynamic);
        verify_priority_wins(&fifo, &dyn_r, 1.2);
        group.bench_function(BenchmarkId::new(name, dynamic.label()), |b| {
            b.iter(|| black_box(run(&w, k, dynamic)).makespan)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2, bench_fig4);
criterion_main!(benches);
