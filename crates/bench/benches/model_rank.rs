//! Component bench: analytical-model throughput — the timing contract
//! behind `repro explore`'s million-cell tier.
//!
//! The acceptance bar is 1,000,000 configurations ranked analytically in
//! under 60 s single-threaded, i.e. a floor of ~16.7k cells/s through
//! the full rank pipeline (per-group best-policy reduction, Pareto
//! prefix-min sweep, bounded top-set heaps). `predict_one` isolates the
//! closed form itself (a handful of float ops plus one miss-curve
//! lookup); `rank_grid` measures the end-to-end pipeline on a ~102k-cell
//! grid including summary extraction, so cells/s read directly against
//! the floor. Measured rates sit orders of magnitude above it — the
//! explore tier's cost is simulator verification, never ranking.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hbm_core::{ArbitrationKind, ReplacementKind};
use hbm_experiments::explore::{rank, ExploreSpec, RankCaps};
use hbm_model::predict::predict;
use hbm_model::ModelConfig;
use hbm_traces::analysis::WorkloadSummary;
use hbm_traces::WorkloadSpec;
use std::hint::black_box;

/// 1 workload axis × 160 k × 16 q × 2 far × 5 arb × 4 rep = 102,400 cells.
const GRID: &str = r#"{
  "workloads": [
    {"workload": {"kind": "cyclic", "pages": 64, "reps": 10}, "p": [4], "seed": 1}
  ],
  "k": {"min": 4, "max": 1600, "steps": 160, "scale": "linear"},
  "q": {"min": 1, "max": 16, "steps": 16, "scale": "linear"},
  "far_latency": [1, 4],
  "arbitration": [
    "fifo", "priority",
    {"kind": "dynamic_priority", "period": 64},
    "random_pick",
    {"kind": "fr_fcfs", "row_shift": 3}
  ],
  "replacement": ["lru", "fifo", "clock", "random"],
  "sim_seed": 0
}"#;

fn bench_model_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_rank");
    group.sample_size(10);

    let summary = WorkloadSummary::from_spec(WorkloadSpec::Cyclic { pages: 64, reps: 10 }, 1, 4);
    let cfg = ModelConfig::new(64, 2, ArbitrationKind::Priority, ReplacementKind::Lru)
        .far_latency(4);
    group.throughput(Throughput::Elements(1));
    group.bench_function("predict_one", |b| {
        b.iter(|| black_box(predict(black_box(&summary), black_box(&cfg))))
    });

    let spec = ExploreSpec::parse(GRID).expect("bench grid parses");
    let cells = u64::try_from(spec.total_cells()).expect("bench grid fits u64");
    assert_eq!(cells, 102_400, "bench grid drifted from its documented size");
    let caps = RankCaps {
        top: 20,
        uncertain: 32,
        frontier: 256,
    };
    group.throughput(Throughput::Elements(cells));
    group.bench_function("rank_grid", |b| {
        b.iter(|| black_box(rank(black_box(&spec), black_box(&caps))))
    });

    group.finish();
}

criterion_group!(benches, bench_model_rank);
criterion_main!(benches);
