//! Benches for the beyond-the-paper extensions: non-disjoint (shared)
//! workloads, graph workloads, the far-latency link model, and
//! SweepPriority.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbm_core::{ArbitrationKind, SimBuilder, Workload};
use hbm_traces::spgemm::spgemm_shared_workload;
use hbm_traces::{TraceOptions, WorkloadSpec};
use std::hint::black_box;

fn run(w: &Workload, k: usize, arb: ArbitrationKind, far: u64) -> u64 {
    SimBuilder::new()
        .hbm_slots(k)
        .channels(1)
        .far_latency(far)
        .arbitration(arb)
        .seed(42)
        .run(w)
        .makespan
}

fn bench_shared(c: &mut Criterion) {
    let shared = spgemm_shared_workload(12, 60, 0.1, 42, 4096, true);
    let disjoint = Workload::from_refs(
        shared
            .traces()
            .iter()
            .map(|t| t.as_slice().to_vec())
            .collect(),
    );
    let k = disjoint.total_unique_pages() / 2;
    // Shape check: sharing saves far-channel fetches.
    let rs = SimBuilder::new().hbm_slots(k).run(&shared);
    let rd = SimBuilder::new().hbm_slots(k).run(&disjoint);
    assert!(rs.fetches < rd.fetches);

    let mut group = c.benchmark_group("shared_workloads");
    group.sample_size(10);
    group.bench_function("disjoint", |b| {
        b.iter(|| black_box(run(&disjoint, k, ArbitrationKind::Priority, 1)))
    });
    group.bench_function("shared", |b| {
        b.iter(|| black_box(run(&shared, k, ArbitrationKind::Priority, 1)))
    });
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_workloads");
    group.sample_size(10);
    for (name, spec) in [
        ("bfs", WorkloadSpec::Bfs { n: 3000, degree: 4 }),
        (
            "pagerank",
            WorkloadSpec::PageRank {
                n: 1500,
                degree: 4,
                iters: 3,
            },
        ),
    ] {
        let w = spec.workload(8, 42, TraceOptions::default());
        let k = (2 * w.trace(0).unique_pages()).max(16);
        for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
            group.bench_function(BenchmarkId::new(name, arb.label()), |b| {
                b.iter(|| black_box(run(&w, k, arb, 1)))
            });
        }
    }
    group.finish();
}

fn bench_far_latency(c: &mut Criterion) {
    let spec = WorkloadSpec::Cyclic {
        pages: 64,
        reps: 10,
    };
    let w = spec.workload(16, 42, TraceOptions::default());
    let k = 16 * 64 / 4;
    let mut group = c.benchmark_group("far_latency");
    group.sample_size(10);
    for lat in [1u64, 4, 16] {
        group.bench_function(BenchmarkId::from_parameter(lat), |b| {
            b.iter(|| black_box(run(&w, k, ArbitrationKind::Priority, lat)))
        });
    }
    group.finish();
}

fn bench_sweep_priority(c: &mut Criterion) {
    let spec = WorkloadSpec::SpGemm {
        n: 80,
        density: 0.1,
    };
    let w = spec.workload(16, 42, TraceOptions::default());
    let k = 2 * w.trace(0).unique_pages();
    let mut group = c.benchmark_group("sweep_priority");
    group.sample_size(10);
    for arb in [
        ArbitrationKind::SweepPriority {
            period: 10 * k as u64,
        },
        ArbitrationKind::DynamicPriority {
            period: 10 * k as u64,
        },
    ] {
        group.bench_function(BenchmarkId::from_parameter(arb.label()), |b| {
            b.iter(|| black_box(run(&w, k, arb, 1)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_shared,
    bench_graph,
    bench_far_latency,
    bench_sweep_priority
);
criterion_main!(benches);
