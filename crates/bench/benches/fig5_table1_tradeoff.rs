//! Bench for Figure 5 / Table 1: the remap-interval trade-off. Verifies
//! the orderings the paper reports (FIFO lowest inconsistency + worst
//! makespan; Priority highest inconsistency + best response time; Dynamic
//! in between), then times the policy family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbm_bench::{contended, run, spgemm_spec};
use hbm_core::ArbitrationKind;
use std::hint::black_box;

fn bench_tradeoff(c: &mut Criterion) {
    let (w, k) = contended(spgemm_spec());

    // Shape checks (Table 1 orderings).
    let fifo = run(&w, k, ArbitrationKind::Fifo);
    let prio = run(&w, k, ArbitrationKind::Priority);
    let dynamic = run(
        &w,
        k,
        ArbitrationKind::DynamicPriority {
            period: 10 * k as u64,
        },
    );
    assert!(fifo.response.inconsistency <= dynamic.response.inconsistency);
    assert!(dynamic.response.inconsistency <= prio.response.inconsistency * 1.05);
    assert!(prio.response.mean <= fifo.response.mean);

    let mut group = c.benchmark_group("fig5_table1");
    group.sample_size(10);
    let kinds = [
        ArbitrationKind::Fifo,
        ArbitrationKind::Priority,
        ArbitrationKind::DynamicPriority { period: k as u64 },
        ArbitrationKind::DynamicPriority {
            period: 10 * k as u64,
        },
        ArbitrationKind::CyclePriority {
            period: 10 * k as u64,
        },
        ArbitrationKind::RandomPick,
    ];
    for arb in kinds {
        group.bench_function(BenchmarkId::from_parameter(arb.label()), |b| {
            b.iter(|| black_box(run(&w, k, arb)).response.inconsistency)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tradeoff);
criterion_main!(benches);
