//! Component bench: instrumented trace generation throughput for every
//! workload family (the paper's §3.2 pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbm_traces::dense::DenseVariant;
use hbm_traces::{SortAlgo, TraceOptions, WorkloadSpec};
use std::hint::black_box;

fn bench_tracegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    let opts = TraceOptions::default();
    let specs: Vec<(&str, WorkloadSpec)> = vec![
        (
            "introsort_8k",
            WorkloadSpec::Sort {
                algo: SortAlgo::Introsort,
                n: 8_000,
            },
        ),
        (
            "mergesort_8k",
            WorkloadSpec::Sort {
                algo: SortAlgo::Mergesort,
                n: 8_000,
            },
        ),
        (
            "spgemm_80",
            WorkloadSpec::SpGemm {
                n: 80,
                density: 0.10,
            },
        ),
        (
            "spmv_120x3",
            WorkloadSpec::SpMv {
                n: 120,
                density: 0.10,
                reps: 3,
            },
        ),
        (
            "dense_ikj_48",
            WorkloadSpec::Dense {
                n: 48,
                variant: DenseVariant::Ikj,
            },
        ),
        (
            "zipf_100k",
            WorkloadSpec::Zipf {
                pages: 1000,
                len: 100_000,
                alpha: 1.0,
            },
        ),
    ];
    for (name, spec) in specs {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| black_box(spec.generate_trace(7, opts)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tracegen);
criterion_main!(benches);
