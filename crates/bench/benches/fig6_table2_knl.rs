//! Benches for Figure 6 / Table 2: the synthetic-KNL microbenchmarks.
//! Verifies properties P1–P4 hold, then times the pointer-chase and GLUPS
//! sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbm_knl_model::{
    glups::simulate_bandwidth_mibs, pointer_chase::simulate_latency_ns, validate, Machine, MemMode,
};
use std::hint::black_box;

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

fn bench_knl(c: &mut Criterion) {
    let m = Machine::knl();
    assert!(validate(&m).all_hold(), "P1-P4 must hold before timing");

    let mut group = c.benchmark_group("fig6_pointer_chase");
    group.sample_size(10);
    for (name, bytes) in [("64MiB", 64 * MIB), ("4GiB", 4 * GIB), ("64GiB", 64 * GIB)] {
        for mode in [MemMode::FlatDram, MemMode::Cache] {
            group.bench_function(BenchmarkId::new(mode.to_string(), name), |b| {
                b.iter(|| black_box(simulate_latency_ns(&m, mode, bytes, 100_000, 7)))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("table2_glups");
    group.sample_size(10);
    for (name, bytes) in [("1GiB", GIB), ("32GiB", 32 * GIB)] {
        for mode in [MemMode::FlatDram, MemMode::FlatHbm, MemMode::Cache] {
            group.bench_function(BenchmarkId::new(mode.to_string(), name), |b| {
                b.iter(|| black_box(simulate_bandwidth_mibs(&m, mode, bytes, 100_000, 7)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_knl);
criterion_main!(benches);
