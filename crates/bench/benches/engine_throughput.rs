//! Component bench: raw tick-engine throughput (ticks and served
//! references per second) across arbitration policies and channel counts.
//! This is the simulator-performance bench, independent of any figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_core::{ArbitrationKind, SimBuilder, Workload};
use hbm_traces::synthetic::zipf_trace;
use std::hint::black_box;

fn workload(p: usize) -> Workload {
    let mut w = Workload::new();
    for core in 0..p {
        w.push(zipf_trace(512, 20_000, 0.9, core as u64).into());
    }
    w
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    let p = 32;
    let w = workload(p);
    group.throughput(Throughput::Elements(w.total_refs() as u64));

    let kinds = [
        ArbitrationKind::Fifo,
        ArbitrationKind::Priority,
        ArbitrationKind::DynamicPriority { period: 1000 },
        ArbitrationKind::RandomPick,
        ArbitrationKind::FrFcfs { row_shift: 2 },
    ];
    for arb in kinds {
        group.bench_function(BenchmarkId::new("policy", arb.label()), |b| {
            b.iter(|| {
                black_box(
                    SimBuilder::new()
                        .hbm_slots(1024)
                        .channels(1)
                        .arbitration(arb)
                        .seed(1)
                        .run(&w),
                )
                .served
            })
        });
    }
    for q in [1usize, 4, 8] {
        group.bench_function(BenchmarkId::new("channels", q), |b| {
            b.iter(|| {
                black_box(
                    SimBuilder::new()
                        .hbm_slots(1024)
                        .channels(q)
                        .arbitration(ArbitrationKind::Priority)
                        .seed(1)
                        .run(&w),
                )
                .served
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
