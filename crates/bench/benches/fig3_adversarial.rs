//! Bench for Figure 3: the Dataset 3 FIFO-killer at growing thread counts.
//! Asserts the linear-blowup shape, then times both policies per `p`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_bench::{fig3_config, run};
use hbm_core::ArbitrationKind;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);

    // Shape check: the FIFO/Priority ratio grows with p (Figure 3).
    let ratio_at = |p: usize| {
        let (w, k) = fig3_config(p);
        let fifo = run(&w, k, ArbitrationKind::Fifo).makespan as f64;
        let prio = run(&w, k, ArbitrationKind::Priority).makespan as f64;
        fifo / prio
    };
    let (r8, r32) = (ratio_at(8), ratio_at(32));
    assert!(
        r32 > 1.5 * r8,
        "Figure 3 shape: ratio must grow with p ({r8} -> {r32})"
    );

    for p in [8usize, 16, 32] {
        let (w, k) = fig3_config(p);
        group.throughput(Throughput::Elements(w.total_refs() as u64));
        for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
            group.bench_with_input(BenchmarkId::new(arb.label(), p), &arb, |b, &arb| {
                b.iter(|| black_box(run(&w, k, arb)).makespan)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
