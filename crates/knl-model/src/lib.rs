//! # hbm-knl-model — a synthetic Knights Landing for the §5 validation
//!
//! The paper validates the HBM+DRAM model on real Xeon Phi Knights Landing
//! hardware (272 threads, 16 GiB MCDRAM, 6 DDR channels). This reproduction
//! has no KNL, so per the substitution policy (DESIGN.md §3) we implement
//! the closest synthetic equivalent: a parameterized machine model —
//! on-chip cache levels, a mesh, TLB growth, flat/cache boot modes, and the
//! DRAM↔HBM far-channel bottleneck — whose default constants are calibrated
//! to the paper's *own measurements* (Table 2).
//!
//! On top of it run the paper's two microbenchmarks, with their exact loop
//! structure:
//!
//! * [`pointer_chase`] — dependent `x := a[x]` hops, re-randomized every 32
//!   ops, 2²⁷ ops (Figure 6 / Table 2a);
//! * [`glups`] — 1024-byte read-xor-write "large updates" covering the
//!   whole array (Table 2b);
//! * [`properties`] — the four validation properties P1–P4 of §5 as
//!   machine-checkable assertions.
//!
//! ```
//! use hbm_knl_model::{Machine, properties::validate};
//!
//! let report = validate(&Machine::knl());
//! assert!(report.all_hold(), "the synthetic KNL satisfies P1-P4");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod glups;
pub mod machine;
pub mod pointer_chase;
pub mod properties;

pub use glups::{bandwidth_sweep, BandwidthRow};
pub use machine::{CacheLevel, Machine, MemMode};
pub use pointer_chase::{latency_sweep, LatencyRow};
pub use properties::{validate, ValidationReport};
