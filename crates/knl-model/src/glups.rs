//! The GLUPS bandwidth microbenchmark of §5.1 (Giga-Large-Updates per
//! Second), run against the synthetic machine.
//!
//! "We record the average MiB/s that can be read, xor'd, and written in
//! randomly chosen blocks of length 1024 bytes … we perform this operation
//! until the entire array's worth of data has been updated." GLUPS (vs
//! GUPS) uses 1024-byte blocks — 16 cache lines — specifically to saturate
//! every HBM channel.
//!
//! The model: all 272 threads stream 1 KiB read-xor-write updates. The
//! achieved bandwidth is the bottleneck mix of the levels the traffic
//! crosses. In cache mode a fraction `h = usable_hbm / array` of randomly
//! chosen blocks hit warmed HBM; the rest cross the DRAM↔HBM far channel
//! (with write-back amplification), giving the harmonic-mean bandwidth
//! `1 / (h/bw_hbm + (1−h)·wb/bw_far)` — which reproduces Table 2b's cliff
//! beyond 16 GiB while staying above flat DRAM (Property 4).

use crate::machine::{Machine, MemMode};
use hbm_core::rng::Xoshiro256;

/// Block size of one "large update" (bytes): 128 doubles = 16 cache lines.
pub const BLOCK_BYTES: u64 = 1024;

/// Closed-form achieved bandwidth in MiB/s for an array of `bytes`.
/// `None` when the allocation is impossible (flat HBM beyond its limit).
pub fn expected_bandwidth_mibs(machine: &Machine, mode: MemMode, bytes: u64) -> Option<f64> {
    match mode {
        MemMode::FlatDram => Some(machine.dram_bw_mibs),
        MemMode::FlatHbm => machine
            .hbm_can_allocate(bytes)
            .then_some(machine.hbm_bw_mibs),
        MemMode::Cache => {
            let h = machine.cache_hit_fraction(bytes);
            let denom = h / machine.hbm_bw_mibs
                + (1.0 - h) * machine.writeback_factor / machine.far_bw_mibs;
            Some(1.0 / denom)
        }
    }
}

/// Simulates the GLUPS run block by block: every block of the array is
/// updated once in random order; cache-mode blocks hit or miss HBM by a
/// seeded draw against the warmed-fraction probability. Returns achieved
/// MiB/s. `blocks_cap` bounds the sampled blocks (the full 64 GiB sweep
/// would otherwise loop 64 M times for identical output).
pub fn simulate_bandwidth_mibs(
    machine: &Machine,
    mode: MemMode,
    bytes: u64,
    blocks_cap: u64,
    seed: u64,
) -> Option<f64> {
    if mode == MemMode::FlatHbm && !machine.hbm_can_allocate(bytes) {
        return None;
    }
    let total_blocks = (bytes / BLOCK_BYTES).max(1);
    let sampled = total_blocks.min(blocks_cap.max(1));
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let h = machine.cache_hit_fraction(bytes);

    // Nanoseconds to move one block through each path at the path's
    // bandwidth (MiB/s -> bytes/ns = bw * 2^20 / 1e9).
    let ns_per_block = |bw_mibs: f64, amplification: f64| -> f64 {
        let bytes_per_ns = bw_mibs * (1u64 << 20) as f64 / 1e9;
        BLOCK_BYTES as f64 * amplification / bytes_per_ns
    };

    let mut total_ns = 0.0f64;
    for _ in 0..sampled {
        let t = match mode {
            MemMode::FlatDram => ns_per_block(machine.dram_bw_mibs, 1.0),
            MemMode::FlatHbm => ns_per_block(machine.hbm_bw_mibs, 1.0),
            MemMode::Cache => {
                if rng.gen_f64() < h {
                    ns_per_block(machine.hbm_bw_mibs, 1.0)
                } else {
                    ns_per_block(machine.far_bw_mibs, machine.writeback_factor)
                }
            }
        };
        total_ns += t;
    }
    // Scale sampled time to the whole array, then MiB/s.
    let full_ns = total_ns * (total_blocks as f64 / sampled as f64);
    let mib = bytes.max(BLOCK_BYTES) as f64 / (1u64 << 20) as f64;
    Some(mib / (full_ns / 1e9))
}

/// One row of the Table 2b sweep.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthRow {
    /// Array size in bytes.
    pub bytes: u64,
    /// Flat-DRAM MiB/s.
    pub dram_mibs: f64,
    /// Flat-HBM MiB/s (`None` beyond the allocation limit).
    pub hbm_mibs: Option<f64>,
    /// Cache-mode MiB/s.
    pub cache_mibs: f64,
}

/// Sweeps array sizes and returns the bandwidth table.
pub fn bandwidth_sweep(
    machine: &Machine,
    sizes: &[u64],
    blocks_cap: u64,
    seed: u64,
) -> Vec<BandwidthRow> {
    sizes
        .iter()
        .map(|&bytes| BandwidthRow {
            bytes,
            dram_mibs: simulate_bandwidth_mibs(machine, MemMode::FlatDram, bytes, blocks_cap, seed)
                .expect("DRAM always allocatable"),
            hbm_mibs: simulate_bandwidth_mibs(machine, MemMode::FlatHbm, bytes, blocks_cap, seed),
            cache_mibs: simulate_bandwidth_mibs(machine, MemMode::Cache, bytes, blocks_cap, seed)
                .expect("cache mode always allocatable"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;

    #[test]
    fn property2_hbm_bandwidth_advantage() {
        let m = Machine::knl();
        let d = expected_bandwidth_mibs(&m, MemMode::FlatDram, GIB).unwrap();
        let h = expected_bandwidth_mibs(&m, MemMode::FlatHbm, GIB).unwrap();
        let ratio = h / d;
        assert!(
            (4.3..5.0).contains(&ratio),
            "paper measures 4.3-4.8x; model gives {ratio}"
        );
    }

    #[test]
    fn cache_mode_matches_paper_table2b() {
        let m = Machine::knl();
        // (bytes, paper cache-mode MiB/s), 10% tolerance — except 32 GiB
        // where the paper's own number wobbles; allow 20%.
        for (bytes, paper, tol) in [
            (4 * GIB, 319_459.0, 0.10),
            (16 * GIB, 272_787.0, 0.10),
            (32 * GIB, 148_989.0, 0.20),
            (64 * GIB, 146_600.0, 0.10),
        ] {
            let b = expected_bandwidth_mibs(&m, MemMode::Cache, bytes).unwrap();
            assert!(
                (b - paper).abs() / paper < tol,
                "{} GiB: model {b} vs paper {paper}",
                bytes / GIB
            );
        }
    }

    #[test]
    fn property4_cliff_but_still_above_dram() {
        let m = Machine::knl();
        let within = expected_bandwidth_mibs(&m, MemMode::Cache, 8 * GIB).unwrap();
        let beyond = expected_bandwidth_mibs(&m, MemMode::Cache, 32 * GIB).unwrap();
        let dram = expected_bandwidth_mibs(&m, MemMode::FlatDram, 32 * GIB).unwrap();
        assert!(beyond < 0.65 * within, "cliff: {beyond} vs {within}");
        assert!(beyond > 1.5 * dram, "but still well above DRAM {dram}");
    }

    #[test]
    fn simulation_converges_to_expectation() {
        let m = Machine::knl();
        for (mode, bytes) in [
            (MemMode::FlatDram, GIB),
            (MemMode::FlatHbm, 2 * GIB),
            (MemMode::Cache, 32 * GIB),
        ] {
            let e = expected_bandwidth_mibs(&m, mode, bytes).unwrap();
            let s = simulate_bandwidth_mibs(&m, mode, bytes, 100_000, 5).unwrap();
            assert!((s - e).abs() / e < 0.05, "{mode}: sim {s} vs expected {e}");
        }
    }

    #[test]
    fn hbm_allocation_limit() {
        let m = Machine::knl();
        assert!(simulate_bandwidth_mibs(&m, MemMode::FlatHbm, 16 * GIB, 1000, 0).is_none());
        assert!(expected_bandwidth_mibs(&m, MemMode::FlatHbm, 16 * GIB).is_none());
    }

    #[test]
    fn sweep_rows_complete() {
        let m = Machine::knl();
        let rows = bandwidth_sweep(&m, &[512 * MIB, 32 * GIB], 10_000, 2);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].hbm_mibs.is_some());
        assert!(rows[1].hbm_mibs.is_none());
        assert!(rows[1].cache_mibs < rows[0].cache_mibs);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = Machine::knl();
        assert_eq!(
            simulate_bandwidth_mibs(&m, MemMode::Cache, 32 * GIB, 50_000, 9),
            simulate_bandwidth_mibs(&m, MemMode::Cache, 32 * GIB, 50_000, 9)
        );
    }
}
