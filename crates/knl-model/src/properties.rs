//! The four model-validation properties of §5, as measurable checks.
//!
//! The paper validates the HBM+DRAM model against KNL by establishing:
//!
//! * **P1** — HBM and DRAM have similar direct-access latency;
//! * **P2** — HBM has substantially higher bandwidth than DRAM;
//! * **P3** — a cache-mode miss to DRAM costs about double an HBM hit;
//! * **P4** — past HBM capacity, the DRAM channel bottlenecks bandwidth,
//!   but cache mode still beats flat DRAM.
//!
//! [`validate`] measures all four on a [`Machine`] and reports pass/fail
//! with the underlying numbers, so the §5 experiment and its tests share
//! one implementation.

use crate::glups::expected_bandwidth_mibs;
use crate::machine::{Machine, MemMode};
use crate::pointer_chase::expected_latency_ns;
use serde::{Deserialize, Serialize};

/// Result of one property check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PropertyCheck {
    /// Property id (1–4).
    pub id: u8,
    /// One-line statement.
    pub statement: String,
    /// Measured quantity driving the verdict.
    pub measured: f64,
    /// Whether the property holds on this machine.
    pub holds: bool,
}

/// Validation report over all four properties.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Individual checks.
    pub checks: Vec<PropertyCheck>,
}

impl ValidationReport {
    /// True if every property holds.
    pub fn all_hold(&self) -> bool {
        self.checks.iter().all(|c| c.holds)
    }
}

/// Measures Properties 1–4 on `machine`.
pub fn validate(machine: &Machine) -> ValidationReport {
    const GIB: u64 = 1 << 30;
    let probe = 4 * GIB;

    // P1: latency ratio HBM/DRAM flat, mid-sized array.
    let dram_lat = expected_latency_ns(machine, MemMode::FlatDram, probe).expect("dram");
    let hbm_lat = expected_latency_ns(machine, MemMode::FlatHbm, probe).expect("hbm fits 4 GiB");
    let p1_ratio = hbm_lat / dram_lat;
    let p1 = PropertyCheck {
        id: 1,
        statement: "HBM and DRAM have similar direct-access latency (ratio < 1.25)".into(),
        measured: p1_ratio,
        holds: p1_ratio < 1.25 && p1_ratio > 0.8,
    };

    // P2: bandwidth ratio HBM/DRAM.
    let dram_bw = expected_bandwidth_mibs(machine, MemMode::FlatDram, probe).expect("dram");
    let hbm_bw = expected_bandwidth_mibs(machine, MemMode::FlatHbm, probe).expect("hbm");
    let p2_ratio = hbm_bw / dram_bw;
    let p2 = PropertyCheck {
        id: 2,
        statement: "HBM bandwidth exceeds DRAM's substantially (ratio > 3)".into(),
        measured: p2_ratio,
        holds: p2_ratio > 3.0,
    };

    // P3: deep cache-mode miss latency ≈ 2× the HBM portion. Following the
    // paper we subtract the shared-L2/mesh baseline before comparing.
    let deep = 64 * GIB;
    let baseline = machine.levels.last().map(|l| l.latency_ns).unwrap_or(0.0);
    let hbm_part = expected_latency_ns(machine, MemMode::FlatHbm, machine.hbm_alloc_limit)
        .expect("hbm at its limit")
        - baseline;
    let miss_part = expected_latency_ns(machine, MemMode::Cache, deep).expect("cache") - baseline;
    let p3_ratio = miss_part / hbm_part;
    let p3 = PropertyCheck {
        id: 3,
        statement: "cache-mode miss costs ~2x an HBM access beyond the mesh (1.5-3x)".into(),
        measured: p3_ratio,
        holds: (1.5..3.0).contains(&p3_ratio),
    };

    // P4: bandwidth cliff past HBM capacity, yet still above flat DRAM.
    let within = expected_bandwidth_mibs(machine, MemMode::Cache, 8 * GIB).expect("cache");
    let beyond = expected_bandwidth_mibs(machine, MemMode::Cache, 32 * GIB).expect("cache");
    let p4_cliff = beyond / within;
    let p4 = PropertyCheck {
        id: 4,
        statement: "past HBM capacity the far channel bottlenecks (cliff) but beats flat DRAM"
            .into(),
        measured: p4_cliff,
        holds: p4_cliff < 0.7 && beyond > dram_bw,
    };

    ValidationReport {
        checks: vec![p1, p2, p3, p4],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_preset_validates_all_properties() {
        let r = validate(&Machine::knl());
        for c in &r.checks {
            assert!(
                c.holds,
                "P{} failed: {} (measured {})",
                c.id, c.statement, c.measured
            );
        }
        assert!(r.all_hold());
    }

    #[test]
    fn measured_values_match_paper_headlines() {
        let r = validate(&Machine::knl());
        // P2: paper reports 4.3-4.8x.
        assert!((4.0..5.2).contains(&r.checks[1].measured));
        // P3: paper: "double latency penalty".
        assert!((1.5..2.6).contains(&r.checks[2].measured));
    }

    #[test]
    fn a_degenerate_machine_fails_validation() {
        // Make HBM no faster than DRAM: P2 must fail.
        let mut m = Machine::knl();
        m.hbm_bw_mibs = m.dram_bw_mibs;
        let r = validate(&m);
        assert!(!r.checks[1].holds);
        assert!(!r.all_hold());
    }
}
