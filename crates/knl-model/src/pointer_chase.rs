//! The pointer-chasing latency microbenchmark of §5.1, run against the
//! synthetic machine.
//!
//! "We record the average time to chase a pointer on an array of a fixed
//! size … x := a[x] … Each element is initialized to the index of a random
//! element. To avoid loops without significant CPU usage from generating
//! random numbers, we add a bit of randomness every 32 pointer chasing
//! operations. In total we measure 2^27 operations."
//!
//! We execute the same loop structure — a dependent random walk with
//! re-randomization every 32 hops — against the machine model: each hop
//! lands in a hierarchy level with probability proportional to the level's
//! share of the array, and the hop costs that level's latency (plus the
//! TLB/page-walk component for memory levels). The Monte Carlo mean
//! converges to [`expected_latency_ns`], which tests verify.

use crate::machine::{Machine, MemMode};
use hbm_core::rng::Xoshiro256;

/// Paper's operation count: 2^27 chases.
pub const PAPER_OPS: u64 = 1 << 27;

/// Closed-form expected latency per chase for an array of `bytes` in
/// `mode`. Returns `None` when the allocation is impossible (flat HBM
/// beyond its limit — the paper "stops the experiment early" there).
pub fn expected_latency_ns(machine: &Machine, mode: MemMode, bytes: u64) -> Option<f64> {
    if bytes == 0 {
        return Some(machine.levels.first().map_or(0.0, |l| l.latency_ns));
    }
    if mode == MemMode::FlatHbm && !machine.hbm_can_allocate(bytes) {
        return None;
    }
    // P(hit at level i) for a uniformly random element of the array: the
    // marginal capacity each level adds, capped by the array size.
    let mut expected = 0.0;
    let mut covered = 0u64;
    for level in &machine.levels {
        if covered >= bytes {
            break;
        }
        let serves = level.capacity.min(bytes) - covered.min(level.capacity);
        expected += (serves as f64 / bytes as f64) * level.latency_ns;
        covered = covered.max(level.capacity.min(bytes));
    }
    if covered < bytes {
        let frac = (bytes - covered) as f64 / bytes as f64;
        expected += frac * machine.flat_memory_latency_ns(mode, bytes);
    }
    Some(expected)
}

/// Runs the Monte Carlo pointer chase: `ops` dependent hops with
/// re-randomization every 32 hops (as in the paper), returning mean ns per
/// hop. `None` when the allocation is impossible.
pub fn simulate_latency_ns(
    machine: &Machine,
    mode: MemMode,
    bytes: u64,
    ops: u64,
    seed: u64,
) -> Option<f64> {
    if mode == MemMode::FlatHbm && !machine.hbm_can_allocate(bytes) {
        return None;
    }
    if bytes == 0 || ops == 0 {
        return Some(0.0);
    }
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // Precompute the per-level cumulative probability thresholds.
    let mut thresholds: Vec<(f64, f64)> = Vec::new(); // (cum_prob, latency)
    let mut covered = 0u64;
    let mut cum = 0.0;
    for level in &machine.levels {
        if covered >= bytes {
            break;
        }
        let serves = level.capacity.min(bytes) - covered.min(level.capacity);
        cum += serves as f64 / bytes as f64;
        thresholds.push((cum, level.latency_ns));
        covered = covered.max(level.capacity.min(bytes));
    }
    let memory_latency = machine.flat_memory_latency_ns(mode, bytes);

    let mut total = 0.0f64;
    let mut x = rng.gen_range(bytes.max(1));
    for op in 0..ops {
        // The paper's loop-avoidance: inject fresh randomness every 32 ops.
        if op % 32 == 0 {
            x = rng.gen_range(bytes.max(1));
        }
        // Next dependent address: a pseudo-random function of x (stands in
        // for a[x], which was initialized to a random index).
        x = {
            let mut s = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(op);
            s ^= s >> 31;
            s % bytes.max(1)
        };
        // Which level serves this address? Uniform draw against coverage.
        let u = (x as f64 + 0.5) / bytes as f64;
        let mut lat = memory_latency;
        for &(cum_prob, level_lat) in &thresholds {
            if u < cum_prob {
                lat = level_lat;
                break;
            }
        }
        total += lat;
    }
    Some(total / ops as f64)
}

/// One row of the Figure 6 / Table 2a sweep.
#[derive(Debug, Clone, Copy)]
pub struct LatencyRow {
    /// Array size in bytes.
    pub bytes: u64,
    /// Flat-DRAM ns/op.
    pub dram_ns: f64,
    /// Flat-HBM ns/op (`None` beyond the HBM allocation limit).
    pub hbm_ns: Option<f64>,
    /// Cache-mode ns/op.
    pub cache_ns: f64,
}

/// Sweeps array sizes (powers of two) and returns the latency table.
pub fn latency_sweep(machine: &Machine, sizes: &[u64], ops: u64, seed: u64) -> Vec<LatencyRow> {
    sizes
        .iter()
        .map(|&bytes| LatencyRow {
            bytes,
            dram_ns: simulate_latency_ns(machine, MemMode::FlatDram, bytes, ops, seed)
                .expect("DRAM always allocatable"),
            hbm_ns: simulate_latency_ns(machine, MemMode::FlatHbm, bytes, ops, seed),
            cache_ns: simulate_latency_ns(machine, MemMode::Cache, bytes, ops, seed)
                .expect("cache mode always allocatable"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1 << 10;
    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;

    #[test]
    fn small_arrays_hit_l1() {
        let m = Machine::knl();
        let e = expected_latency_ns(&m, MemMode::FlatDram, KIB).unwrap();
        assert!((e - 2.0).abs() < 1e-9, "1 KiB lives in L1: {e}");
    }

    #[test]
    fn latency_monotone_in_size() {
        let m = Machine::knl();
        let mut last = 0.0;
        for shift in 10..36 {
            let e = expected_latency_ns(&m, MemMode::Cache, 1 << shift).unwrap();
            assert!(e >= last, "latency dips at 2^{shift}: {e} < {last}");
            last = e;
        }
    }

    #[test]
    fn hbm_allocation_limit_respected() {
        let m = Machine::knl();
        assert!(expected_latency_ns(&m, MemMode::FlatHbm, 8 * GIB).is_some());
        assert!(expected_latency_ns(&m, MemMode::FlatHbm, 16 * GIB).is_none());
        assert!(simulate_latency_ns(&m, MemMode::FlatHbm, 16 * GIB, 100, 0).is_none());
    }

    #[test]
    fn monte_carlo_converges_to_expectation() {
        let m = Machine::knl();
        for (mode, bytes) in [
            (MemMode::FlatDram, 256 * MIB),
            (MemMode::FlatHbm, 4 * GIB),
            (MemMode::Cache, 32 * GIB),
            (MemMode::Cache, 8 * MIB), // partially cached on-chip
        ] {
            let e = expected_latency_ns(&m, mode, bytes).unwrap();
            let s = simulate_latency_ns(&m, mode, bytes, 200_000, 7).unwrap();
            assert!(
                (s - e).abs() / e < 0.05,
                "{mode} {bytes}: sim {s} vs expected {e}"
            );
        }
    }

    #[test]
    fn beyond_shared_l2_latencies_match_paper() {
        // The Figure 6b regime: arrays larger than shared L2.
        let m = Machine::knl();
        let d = expected_latency_ns(&m, MemMode::FlatDram, 16 * MIB).unwrap();
        // 34 MiB shared L2 still serves some of a 16 MiB array entirely —
        // so at 16 MiB the model is *below* the paper's plateau; by 256 MiB
        // the plateau dominates.
        assert!(d <= 170.0);
        let d256 = expected_latency_ns(&m, MemMode::FlatDram, 256 * MIB).unwrap();
        assert!(
            (d256 - 235.6).abs() / 235.6 < 0.15,
            "model {d256} vs paper 235.6"
        );
    }

    #[test]
    fn sweep_produces_rows() {
        let m = Machine::knl();
        let rows = latency_sweep(&m, &[MIB, 64 * MIB, 16 * GIB], 10_000, 1);
        assert_eq!(rows.len(), 3);
        assert!(rows[2].hbm_ns.is_none());
        assert!(rows[0].dram_ns < rows[1].dram_ns);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = Machine::knl();
        let a = simulate_latency_ns(&m, MemMode::Cache, GIB, 50_000, 3);
        let b = simulate_latency_ns(&m, MemMode::Cache, GIB, 50_000, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_ops_and_zero_bytes() {
        let m = Machine::knl();
        assert_eq!(
            simulate_latency_ns(&m, MemMode::FlatDram, 0, 100, 0),
            Some(0.0)
        );
        assert_eq!(
            simulate_latency_ns(&m, MemMode::FlatDram, MIB, 0, 0),
            Some(0.0)
        );
    }
}
