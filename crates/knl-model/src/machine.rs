//! The synthetic Knights Landing machine description.
//!
//! We have no KNL hardware, so §5's validation experiments run against this
//! parameterized model instead (see DESIGN.md §3 for the substitution
//! argument). The default constants are calibrated to the paper's *own
//! measurements* (Table 2), so the microbenchmarks regenerate the shape —
//! and mostly the values — of Figure 6 and Table 2:
//!
//! | quantity                          | paper's measurement | model constant |
//! |-----------------------------------|---------------------|----------------|
//! | flat DRAM latency @16 MiB         | 168.9 ns            | `dram_base_ns = 168` |
//! | flat HBM − flat DRAM latency      | ≈ +24 ns            | `hbm_extra_ns = 24`  |
//! | TLB growth 16 MiB → 64 GiB        | ≈ +196 ns           | `tlb_ns_per_doubling = 16.5`, coverage 16 MiB |
//! | cache-mode hit overhead @8 GiB    | ≈ +35 ns            | `cache_tag_ns_per_doubling = 4` |
//! | cache-mode miss (extra mesh hop)  | ≈ +160 ns           | `hbm_probe_ns = 160` |
//! | flat DRAM bandwidth               | ≈ 67 500 MiB/s      | `dram_bw_mibs` |
//! | flat HBM bandwidth                | ≈ 310 000 MiB/s     | `hbm_bw_mibs` (4.6×) |
//! | cache-mode far-channel efficiency | plateau ≈ 147 000   | `far_bw_mibs = 160 000`, `writeback_factor = 1.3` |

use serde::{Deserialize, Serialize};

/// How the machine is booted (paper §1: KNL's memory modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemMode {
    /// Flat mode, allocation bound to DDR (`numactl --membind` to DRAM).
    FlatDram,
    /// Flat mode, allocation bound to MCDRAM/HBM.
    FlatHbm,
    /// Cache mode: HBM is a memory-side cache in front of DRAM.
    Cache,
}

impl std::fmt::Display for MemMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MemMode::FlatDram => "flat-DRAM",
            MemMode::FlatHbm => "flat-HBM",
            MemMode::Cache => "cache",
        };
        f.write_str(s)
    }
}

/// One on-chip cache level crossed before memory (L1, L2, shared L2 mesh).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CacheLevel {
    /// Display name.
    pub name: &'static str,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Absolute load-to-use latency when the access is served here (ns).
    pub latency_ns: f64,
}

/// Full machine description.
#[derive(Debug, Clone, Serialize)]
pub struct Machine {
    /// On-chip levels, fastest first.
    pub levels: Vec<CacheLevel>,
    /// Flat-mode DRAM latency at the TLB-covered base (ns).
    pub dram_base_ns: f64,
    /// Additional latency of HBM over DRAM when accessed flat (ns) —
    /// the paper's 24 ns (Property 1: "similar latency").
    pub hbm_extra_ns: f64,
    /// Extra latency per doubling of the working set beyond TLB coverage
    /// (page-walk cost; produces the slow rise across Figure 6b).
    pub tlb_ns_per_doubling: f64,
    /// Working-set size fully covered by the TLB (bytes).
    pub tlb_coverage: u64,
    /// Cache-mode tag/bookkeeping overhead per doubling beyond coverage.
    pub cache_tag_ns_per_doubling: f64,
    /// Cost of probing (and missing) HBM in cache mode before going to
    /// DRAM: the "third mesh crossing" (ns).
    pub hbm_probe_ns: f64,
    /// HBM capacity (bytes).
    pub hbm_capacity: u64,
    /// Largest single flat-HBM allocation the OS permits (the paper could
    /// only allocate an 8 GiB array on the 16 GiB part).
    pub hbm_alloc_limit: u64,
    /// Usable HBM in cache mode (metadata/OS reserve shaves some).
    pub hbm_usable_cache: u64,
    /// Flat DRAM bandwidth (MiB/s) with all threads.
    pub dram_bw_mibs: f64,
    /// Flat HBM bandwidth (MiB/s) with all threads.
    pub hbm_bw_mibs: f64,
    /// Effective DRAM→HBM far-channel streaming bandwidth in cache mode.
    pub far_bw_mibs: f64,
    /// Write-back amplification on the far channel (dirty evictions).
    pub writeback_factor: f64,
    /// Hardware threads.
    pub threads: u32,
}

impl Machine {
    /// The calibrated KNL preset (see module docs for the constant table).
    pub fn knl() -> Self {
        const MIB: u64 = 1 << 20;
        const GIB: u64 = 1 << 30;
        Machine {
            levels: vec![
                CacheLevel {
                    name: "L1",
                    capacity: 32 * 1024,
                    latency_ns: 2.0,
                },
                CacheLevel {
                    name: "L2",
                    capacity: MIB,
                    latency_ns: 13.0,
                },
                CacheLevel {
                    name: "sharedL2",
                    capacity: 34 * MIB,
                    latency_ns: 140.0,
                },
            ],
            dram_base_ns: 168.0,
            hbm_extra_ns: 24.0,
            tlb_ns_per_doubling: 16.5,
            tlb_coverage: 16 * MIB,
            cache_tag_ns_per_doubling: 4.0,
            hbm_probe_ns: 160.0,
            hbm_capacity: 16 * GIB,
            hbm_alloc_limit: 8 * GIB,
            hbm_usable_cache: 14 * GIB + 512 * MIB,
            dram_bw_mibs: 67_500.0,
            hbm_bw_mibs: 310_000.0,
            far_bw_mibs: 160_000.0,
            writeback_factor: 1.3,
            threads: 272,
        }
    }

    /// TLB doublings beyond coverage for an array of `bytes`.
    pub fn tlb_doublings(&self, bytes: u64) -> f64 {
        if bytes <= self.tlb_coverage {
            0.0
        } else {
            (bytes as f64 / self.tlb_coverage as f64).log2()
        }
    }

    /// Flat-mode memory latency (DRAM or HBM) for a random access into an
    /// array of `bytes` — the plateau heights in Figure 6b / Table 2a.
    pub fn flat_memory_latency_ns(&self, mode: MemMode, bytes: u64) -> f64 {
        let tlb = self.tlb_ns_per_doubling * self.tlb_doublings(bytes);
        match mode {
            MemMode::FlatDram => self.dram_base_ns + tlb,
            MemMode::FlatHbm => self.dram_base_ns + self.hbm_extra_ns + tlb,
            MemMode::Cache => {
                // Weighted over HBM hits and misses-to-DRAM.
                let h = self.cache_hit_fraction(bytes);
                let tag = self.cache_tag_ns_per_doubling * self.tlb_doublings(bytes);
                let hit = self.dram_base_ns + self.hbm_extra_ns + tlb + tag;
                let miss = self.dram_base_ns + tlb + self.hbm_probe_ns + tag;
                h * hit + (1.0 - h) * miss
            }
        }
    }

    /// Fraction of random accesses into `bytes` of warmed data that hit the
    /// HBM cache in cache mode.
    pub fn cache_hit_fraction(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 1.0;
        }
        (self.hbm_usable_cache as f64 / bytes as f64).min(1.0)
    }

    /// Whether flat HBM can hold an array of `bytes` at all.
    pub fn hbm_can_allocate(&self, bytes: u64) -> bool {
        bytes <= self.hbm_alloc_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;

    #[test]
    fn knl_preset_sane() {
        let m = Machine::knl();
        assert_eq!(m.levels.len(), 3);
        assert!(m.hbm_bw_mibs > 4.0 * m.dram_bw_mibs, "Property 2 baked in");
        assert!(m.hbm_can_allocate(8 * GIB));
        assert!(!m.hbm_can_allocate(16 * GIB));
    }

    #[test]
    fn property1_similar_flat_latency() {
        let m = Machine::knl();
        for bytes in [16 * MIB, 256 * MIB, 8 * GIB] {
            let d = m.flat_memory_latency_ns(MemMode::FlatDram, bytes);
            let h = m.flat_memory_latency_ns(MemMode::FlatHbm, bytes);
            assert!((h - d - 24.0).abs() < 1e-9, "constant 24ns gap");
            assert!(h / d < 1.15, "within ~10-15% (paper: 'similar')");
        }
    }

    #[test]
    fn latency_matches_paper_table2a_within_tolerance() {
        let m = Machine::knl();
        // (bytes, paper DRAM ns, paper HBM ns)
        let rows: [(u64, f64, f64); 4] = [
            (16 * MIB, 168.9, 187.6),
            (256 * MIB, 235.6, 259.8),
            (8 * GIB, 318.3, 343.1),
            (64 * GIB, 364.7, f64::NAN),
        ];
        for (bytes, dram, hbm) in rows {
            let d = m.flat_memory_latency_ns(MemMode::FlatDram, bytes);
            assert!(
                (d - dram).abs() / dram < 0.12,
                "DRAM {bytes}B: model {d} vs paper {dram}"
            );
            if !hbm.is_nan() {
                let h = m.flat_memory_latency_ns(MemMode::FlatHbm, bytes);
                assert!(
                    (h - hbm).abs() / hbm < 0.12,
                    "HBM {bytes}B: model {h} vs paper {hbm}"
                );
            }
        }
    }

    #[test]
    fn property3_cache_miss_doubles_latency() {
        let m = Machine::knl();
        // Far beyond HBM, most accesses miss; the extra probe + crossing
        // should put cache-mode latency well above flat DRAM (paper: ~2x
        // the post-sharedL2 HBM access cost).
        let deep = m.flat_memory_latency_ns(MemMode::Cache, 64 * GIB);
        let flat = m.flat_memory_latency_ns(MemMode::FlatDram, 64 * GIB);
        assert!(
            deep > flat + 100.0,
            "cache-mode deep miss {deep} vs flat {flat}"
        );
        // Paper's 64 GiB cache-mode value: 489.6 ns.
        assert!(
            (deep - 489.6).abs() / 489.6 < 0.12,
            "model {deep} vs paper 489.6"
        );
    }

    #[test]
    fn cache_hit_fraction_boundaries() {
        let m = Machine::knl();
        assert_eq!(m.cache_hit_fraction(MIB), 1.0);
        let f32g = m.cache_hit_fraction(32 * GIB);
        assert!((f32g - 0.453).abs() < 0.01, "14.5/32 = {f32g}");
        assert_eq!(m.cache_hit_fraction(0), 1.0);
    }

    #[test]
    fn tlb_doublings_monotone() {
        let m = Machine::knl();
        assert_eq!(m.tlb_doublings(MIB), 0.0);
        assert!(m.tlb_doublings(GIB) < m.tlb_doublings(64 * GIB));
    }
}
