//! Property-based tests for the synthetic KNL model.

use hbm_knl_model::glups::{expected_bandwidth_mibs, simulate_bandwidth_mibs};
use hbm_knl_model::pointer_chase::{expected_latency_ns, simulate_latency_ns};
use hbm_knl_model::{Machine, MemMode};
use proptest::prelude::*;

fn modes() -> impl Strategy<Value = MemMode> {
    prop_oneof![
        Just(MemMode::FlatDram),
        Just(MemMode::FlatHbm),
        Just(MemMode::Cache),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Latency is monotone non-decreasing in the array size for every mode.
    #[test]
    fn latency_monotone(mode in modes(), shift in 10u32..35) {
        let m = Machine::knl();
        let a = expected_latency_ns(&m, mode, 1 << shift);
        let b = expected_latency_ns(&m, mode, 1 << (shift + 1));
        match (a, b) {
            (Some(a), Some(b)) => prop_assert!(b >= a - 1e-9, "{a} -> {b}"),
            (None, Some(_)) => prop_assert!(false, "allocatable grew with size"),
            _ => {}
        }
    }

    /// Flat HBM is always within its fixed offset of flat DRAM (Property 1)
    /// wherever it can allocate. The raw memory component differs by
    /// exactly `hbm_extra_ns`; the end-to-end expectation differs by at
    /// most that (on-chip caches serve part of small arrays identically).
    #[test]
    fn p1_holds_at_every_size(shift in 20u32..33) {
        let m = Machine::knl();
        let bytes = 1u64 << shift;
        let mem_h = m.flat_memory_latency_ns(MemMode::FlatHbm, bytes);
        let mem_d = m.flat_memory_latency_ns(MemMode::FlatDram, bytes);
        prop_assert!((mem_h - mem_d - m.hbm_extra_ns).abs() < 1e-9);
        if let Some(h) = expected_latency_ns(&m, MemMode::FlatHbm, bytes) {
            let d = expected_latency_ns(&m, MemMode::FlatDram, bytes).unwrap();
            prop_assert!(h >= d - 1e-9, "HBM never faster than DRAM flat");
            prop_assert!(h - d <= m.hbm_extra_ns + 1e-9);
        }
    }

    /// Monte Carlo simulation converges to the closed form within 10% for
    /// any mode/size/seed.
    #[test]
    fn simulation_tracks_expectation(
        mode in modes(),
        shift in 16u32..36,
        seed in 0u64..100,
    ) {
        let m = Machine::knl();
        let bytes = 1u64 << shift;
        let (sim, exp) = (
            simulate_latency_ns(&m, mode, bytes, 50_000, seed),
            expected_latency_ns(&m, mode, bytes),
        );
        prop_assert_eq!(sim.is_some(), exp.is_some());
        if let (Some(s), Some(e)) = (sim, exp) {
            prop_assert!((s - e).abs() / e.max(1e-9) < 0.10, "sim {s} vs exp {e}");
        }
    }

    /// Cache-mode bandwidth is always between the far-channel floor and the
    /// HBM ceiling, and decreases with the array size.
    #[test]
    fn cache_bandwidth_bounded_and_monotone(shift in 29u32..36) {
        let m = Machine::knl();
        let a = expected_bandwidth_mibs(&m, MemMode::Cache, 1 << shift).unwrap();
        let b = expected_bandwidth_mibs(&m, MemMode::Cache, 1 << (shift + 1)).unwrap();
        prop_assert!(b <= a + 1e-9);
        let floor = m.far_bw_mibs / m.writeback_factor;
        prop_assert!(a <= m.hbm_bw_mibs + 1e-9);
        prop_assert!(b >= floor - 1e-9);
    }

    /// Bandwidth simulation converges to the closed form.
    #[test]
    fn bandwidth_sim_tracks_expectation(
        mode in modes(),
        shift in 29u32..36,
        seed in 0u64..50,
    ) {
        let m = Machine::knl();
        let bytes = 1u64 << shift;
        let sim = simulate_bandwidth_mibs(&m, mode, bytes, 50_000, seed);
        let exp = expected_bandwidth_mibs(&m, mode, bytes);
        prop_assert_eq!(sim.is_some(), exp.is_some());
        if let (Some(s), Some(e)) = (sim, exp) {
            prop_assert!((s - e).abs() / e < 0.10, "sim {s} vs exp {e}");
        }
    }
}
