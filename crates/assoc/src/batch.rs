//! Theorem 4's concurrent list maintenance: moving `x` items to the front
//! of the eviction list in `O(log x)` parallel rounds via prefix sums.
//!
//! When `p` processors hit `p` resident pages in one tick, LRU requires all
//! `p` corresponding nodes to move to the list head simultaneously. The
//! paper's recipe: (1) lazily mark-remove the old nodes, (2) have each
//! processor claim a unique slot in an auxiliary array via a prefix-sum
//! (log-depth) counter, (3) stitch the auxiliary array into a mini list in
//! O(1), and (4) splice the mini list onto the head in O(1).
//!
//! We simulate the PRAM execution faithfully enough to *measure the round
//! count*: [`prefix_sum_rounds`] performs the classic Hillis–Steele scan and
//! reports its depth, and [`BatchList`] implements the mark-and-sweep lazy
//! list with batch front-insertion, verifying the resulting order equals a
//! sequential reference.

/// Exclusive prefix sum computed round-by-round (Hillis–Steele), returning
/// the scanned array and the number of parallel rounds used.
///
/// The round count is `⌈log₂ x⌉` — the `O(log q)` / `O(log p)` factor in
/// Theorem 4.
pub fn prefix_sum_rounds(input: &[u64]) -> (Vec<u64>, u32) {
    let n = input.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    // Inclusive scan by doubling strides; each stride is one PRAM round.
    let mut cur: Vec<u64> = input.to_vec();
    let mut rounds = 0;
    let mut stride = 1;
    while stride < n {
        let prev = cur.clone();
        for i in stride..n {
            cur[i] = prev[i] + prev[i - stride];
        }
        stride *= 2;
        rounds += 1;
    }
    // Convert to exclusive.
    let mut out = vec![0u64; n];
    out[1..n].copy_from_slice(&cur[..n - 1]);
    (out, rounds)
}

/// An eviction-order list supporting lazy removal and O(1)-splice batch
/// front-insertion, as in the Theorem 4 proof.
#[derive(Debug, Clone)]
pub struct BatchList {
    /// Node payloads; `None` = tombstone from lazy removal.
    items: Vec<Option<u64>>,
    next: Vec<usize>,
    prev: Vec<usize>,
    head: usize,
    tail: usize,
    /// Position of each live value (value → node index).
    pos: std::collections::HashMap<u64, usize>,
    tombstones: usize,
    /// Parallel rounds charged so far (prefix sums).
    pub rounds_charged: u64,
}

const NIL: usize = usize::MAX;

impl Default for BatchList {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchList {
    /// An empty list.
    pub fn new() -> Self {
        BatchList {
            items: Vec::new(),
            next: Vec::new(),
            prev: Vec::new(),
            head: NIL,
            tail: NIL,
            pos: std::collections::HashMap::new(),
            tombstones: 0,
            rounds_charged: 0,
        }
    }

    /// Live item count.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when no live items remain.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Physical node count including tombstones (bounded by O(k) via
    /// [`garbage_collect`](Self::garbage_collect)).
    pub fn physical_len(&self) -> usize {
        self.pos.len() + self.tombstones
    }

    fn alloc(&mut self, v: u64) -> usize {
        self.items.push(Some(v));
        self.next.push(NIL);
        self.prev.push(NIL);
        self.items.len() - 1
    }

    /// Lazily removes `value` (tombstone; O(1), no traversal).
    pub fn mark_remove(&mut self, value: u64) -> bool {
        match self.pos.remove(&value) {
            Some(i) => {
                self.items[i] = None;
                self.tombstones += 1;
                true
            }
            None => false,
        }
    }

    /// Moves the batch `values` to the front concurrently: each value is
    /// mark-removed if present, the batch claims unique auxiliary slots via
    /// a prefix sum (charging `⌈log₂ x⌉` rounds), forms a mini list, and
    /// splices it onto the head. The first element of `values` ends up
    /// frontmost.
    pub fn batch_move_to_front(&mut self, values: &[u64]) {
        if values.is_empty() {
            return;
        }
        for &v in values {
            self.mark_remove(v);
        }
        // Prefix sum assigns each of the x processors a distinct auxiliary
        // index; we run it for the round count even though the result is
        // the identity here (each processor contributes 1).
        let ones = vec![1u64; values.len()];
        let (offsets, rounds) = prefix_sum_rounds(&ones);
        self.rounds_charged += rounds as u64;
        // Build the mini list in auxiliary order, then splice.
        let mut aux = vec![NIL; values.len()];
        for (i, &v) in values.iter().enumerate() {
            let node = self.alloc(v);
            self.pos.insert(v, node);
            aux[offsets[i] as usize] = node;
        }
        for w in 0..aux.len() {
            if w + 1 < aux.len() {
                self.next[aux[w]] = aux[w + 1];
                self.prev[aux[w + 1]] = aux[w];
            }
        }
        let mini_head = aux[0];
        let mini_tail = aux[aux.len() - 1];
        self.next[mini_tail] = self.head;
        if self.head != NIL {
            self.prev[self.head] = mini_tail;
        } else {
            self.tail = mini_tail;
        }
        self.head = mini_head;
    }

    /// Pops the frontmost *live* item, skipping tombstones.
    pub fn pop_front_live(&mut self) -> Option<u64> {
        while self.head != NIL {
            let h = self.head;
            self.head = self.next[h];
            if self.head != NIL {
                self.prev[self.head] = NIL;
            } else {
                self.tail = NIL;
            }
            if let Some(v) = self.items[h].take() {
                self.pos.remove(&v);
                return Some(v);
            }
            self.tombstones -= 1;
        }
        None
    }

    /// Physically removes tombstones and compacts storage ("periodically
    /// run garbage collection", Lemma 1 proof).
    pub fn garbage_collect(&mut self) {
        let live: Vec<u64> = self.iter_live().collect();
        *self = BatchList::new();
        // Rebuild back-to-front so front order is preserved.
        for &v in live.iter().rev() {
            self.batch_move_to_front(&[v]);
        }
        // Rebuilding charged rounds; GC itself is off the critical path.
    }

    /// Iterates live items front to back.
    pub fn iter_live(&self) -> impl Iterator<Item = u64> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            while cur != NIL {
                let i = cur;
                cur = self.next[i];
                if let Some(v) = self.items[i] {
                    return Some(v);
                }
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_correct_and_log_depth() {
        let input = vec![1u64; 37];
        let (scan, rounds) = prefix_sum_rounds(&input);
        for (i, &s) in scan.iter().enumerate() {
            assert_eq!(s, i as u64);
        }
        assert_eq!(rounds, 6, "ceil(log2 37) = 6");
        let (_, r1) = prefix_sum_rounds(&[5]);
        assert_eq!(r1, 0);
        let (e, r0) = prefix_sum_rounds(&[]);
        assert!(e.is_empty());
        assert_eq!(r0, 0);
    }

    #[test]
    fn prefix_sum_general_values() {
        let (scan, _) = prefix_sum_rounds(&[3, 1, 4, 1, 5]);
        assert_eq!(scan, vec![0, 3, 4, 8, 9]);
    }

    #[test]
    fn batch_front_insert_order() {
        let mut l = BatchList::new();
        l.batch_move_to_front(&[1, 2, 3]);
        assert_eq!(l.iter_live().collect::<Vec<_>>(), vec![1, 2, 3]);
        l.batch_move_to_front(&[4, 5]);
        assert_eq!(l.iter_live().collect::<Vec<_>>(), vec![4, 5, 1, 2, 3]);
    }

    #[test]
    fn batch_move_existing_items() {
        let mut l = BatchList::new();
        l.batch_move_to_front(&[1, 2, 3, 4]);
        l.batch_move_to_front(&[3, 1]); // move two existing to front
        assert_eq!(l.iter_live().collect::<Vec<_>>(), vec![3, 1, 2, 4]);
        assert_eq!(l.len(), 4);
    }

    #[test]
    fn rounds_charged_are_logarithmic() {
        let mut l = BatchList::new();
        let batch: Vec<u64> = (0..64).collect();
        l.batch_move_to_front(&batch);
        assert_eq!(l.rounds_charged, 6); // log2(64)
        l.batch_move_to_front(&[0]);
        assert_eq!(l.rounds_charged, 6); // single item adds 0 rounds
    }

    #[test]
    fn pop_front_live_skips_tombstones() {
        let mut l = BatchList::new();
        l.batch_move_to_front(&[1, 2, 3]);
        l.mark_remove(1);
        assert_eq!(l.pop_front_live(), Some(2));
        assert_eq!(l.pop_front_live(), Some(3));
        assert_eq!(l.pop_front_live(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn matches_sequential_reference_under_random_ops() {
        use hbm_core::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut l = BatchList::new();
        let mut reference: Vec<u64> = Vec::new(); // front at index 0
        for _ in 0..500 {
            let op = rng.gen_range(3);
            match op {
                0 => {
                    // Batch move 1-4 values (may include existing).
                    let n = 1 + rng.gen_index(4);
                    let vals: Vec<u64> = (0..n).map(|_| rng.gen_range(40)).collect();
                    let mut uniq = vals.clone();
                    uniq.dedup();
                    // Ensure uniqueness within a batch (processors touch
                    // distinct pages).
                    let mut seen = std::collections::HashSet::new();
                    let vals: Vec<u64> = vals.into_iter().filter(|v| seen.insert(*v)).collect();
                    l.batch_move_to_front(&vals);
                    reference.retain(|v| !vals.contains(v));
                    for &v in vals.iter().rev() {
                        reference.insert(0, v);
                    }
                }
                1 => {
                    let v = rng.gen_range(40);
                    let was = l.mark_remove(v);
                    let had = reference.contains(&v);
                    assert_eq!(was, had);
                    reference.retain(|&x| x != v);
                }
                _ => {
                    let got = l.pop_front_live();
                    let want = if reference.is_empty() {
                        None
                    } else {
                        Some(reference.remove(0))
                    };
                    assert_eq!(got, want);
                }
            }
            assert_eq!(l.iter_live().collect::<Vec<_>>(), reference);
        }
    }

    #[test]
    fn garbage_collect_drops_tombstones_keeps_order() {
        let mut l = BatchList::new();
        l.batch_move_to_front(&[1, 2, 3, 4, 5]);
        l.mark_remove(2);
        l.mark_remove(4);
        assert_eq!(l.physical_len(), 5);
        l.garbage_collect();
        assert_eq!(l.physical_len(), 3);
        assert_eq!(l.iter_live().collect::<Vec<_>>(), vec![1, 3, 5]);
    }
}
