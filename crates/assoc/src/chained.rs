//! The chained hash table of Lemma 1, with chain-length accounting.
//!
//! "The first data structure is a hash table (with chaining to resolve
//! collisions) which allows us to simulate full-associativity." Every probe
//! is counted, because in the transformed program each chain node visited is
//! a real HBM access — the O(1)-expected chain length is exactly what makes
//! the transformation's overhead constant.

use crate::hashing::CarterWegman;

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    value: u32,
    /// Next entry index in this bucket's chain, or `u32::MAX`.
    next: u32,
}

const NIL: u32 = u32::MAX;

/// Chained hash table `u64 → u32` with `m` buckets and probe accounting.
#[derive(Debug, Clone)]
pub struct ChainedHashTable {
    buckets: Vec<u32>,
    entries: Vec<Entry>,
    free: Vec<u32>,
    hash: CarterWegman,
    len: usize,
    probes: u64,
    operations: u64,
}

impl ChainedHashTable {
    /// A table with `m` buckets using the hash member drawn from `seed`.
    pub fn new(m: usize, seed: u64) -> Self {
        assert!(m > 0);
        ChainedHashTable {
            buckets: vec![NIL; m],
            entries: Vec::new(),
            free: Vec::new(),
            hash: CarterWegman::from_seed(seed),
            len: 0,
            probes: 0,
            operations: 0,
        }
    }

    /// Entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total chain nodes visited across all operations (each one models an
    /// HBM access to the metadata region).
    pub fn total_probes(&self) -> u64 {
        self.probes
    }

    /// Mean probes per operation — Lemma 1's O(1)-expected quantity.
    pub fn mean_probes(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.probes as f64 / self.operations as f64
        }
    }

    /// Longest current chain (worst bucket).
    pub fn max_chain(&self) -> usize {
        let mut max = 0;
        for &head in &self.buckets {
            let mut n = 0;
            let mut cur = head;
            while cur != NIL {
                n += 1;
                cur = self.entries[cur as usize].next;
            }
            max = max.max(n);
        }
        max
    }

    /// Looks up `key`, counting chain probes.
    pub fn get(&mut self, key: u64) -> Option<u32> {
        self.operations += 1;
        let b = self.hash.hash(key, self.buckets.len());
        let mut cur = self.buckets[b];
        while cur != NIL {
            self.probes += 1;
            let e = self.entries[cur as usize];
            if e.key == key {
                return Some(e.value);
            }
            cur = e.next;
        }
        None
    }

    /// Inserts or updates `key → value`; returns the previous value if any.
    pub fn insert(&mut self, key: u64, value: u32) -> Option<u32> {
        self.operations += 1;
        let b = self.hash.hash(key, self.buckets.len());
        let mut cur = self.buckets[b];
        while cur != NIL {
            self.probes += 1;
            let e = &mut self.entries[cur as usize];
            if e.key == key {
                return Some(std::mem::replace(&mut e.value, value));
            }
            cur = e.next;
        }
        let entry = Entry {
            key,
            value,
            next: self.buckets[b],
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i as usize] = entry;
                i
            }
            None => {
                self.entries.push(entry);
                (self.entries.len() - 1) as u32
            }
        };
        self.buckets[b] = idx;
        self.len += 1;
        None
    }

    /// Removes `key`; returns its value if present.
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        self.operations += 1;
        let b = self.hash.hash(key, self.buckets.len());
        let mut prev = NIL;
        let mut cur = self.buckets[b];
        while cur != NIL {
            self.probes += 1;
            let e = self.entries[cur as usize];
            if e.key == key {
                if prev == NIL {
                    self.buckets[b] = e.next;
                } else {
                    self.entries[prev as usize].next = e.next;
                }
                self.free.push(cur);
                self.len -= 1;
                return Some(e.value);
            }
            prev = cur;
            cur = e.next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_cycle() {
        let mut t = ChainedHashTable::new(16, 1);
        assert_eq!(t.insert(100, 1), None);
        assert_eq!(t.insert(200, 2), None);
        assert_eq!(t.get(100), Some(1));
        assert_eq!(t.get(300), None);
        assert_eq!(t.insert(100, 9), Some(1));
        assert_eq!(t.get(100), Some(9));
        assert_eq!(t.remove(100), Some(9));
        assert_eq!(t.remove(100), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn survives_heavy_collisions() {
        // One bucket: everything chains; correctness must not depend on the
        // hash spreading.
        let mut t = ChainedHashTable::new(1, 1);
        for i in 0..100u64 {
            t.insert(i, i as u32);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.max_chain(), 100);
        for i in 0..100u64 {
            assert_eq!(t.get(i), Some(i as u32));
        }
        for i in (0..100u64).step_by(2) {
            assert_eq!(t.remove(i), Some(i as u32));
        }
        assert_eq!(t.len(), 50);
        for i in 0..100u64 {
            assert_eq!(t.get(i), (i % 2 == 1).then_some(i as u32));
        }
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut t = ChainedHashTable::new(8, 2);
        for i in 0..50u64 {
            t.insert(i, 0);
            t.remove(i);
        }
        assert!(
            t.entries.len() <= 2,
            "slab should recycle, used {}",
            t.entries.len()
        );
    }

    #[test]
    fn expected_chain_length_is_constant_at_load_one() {
        // k keys in k buckets (the Lemma 1 configuration): mean probes per
        // op should be a small constant.
        let k = 4096;
        let mut t = ChainedHashTable::new(k, 7);
        for i in 0..k as u64 {
            t.insert(i * 2654435761 % (1 << 40), i as u32);
        }
        for i in 0..k as u64 {
            t.get(i * 2654435761 % (1 << 40));
        }
        assert!(
            t.mean_probes() < 3.0,
            "mean probes {} should be O(1)",
            t.mean_probes()
        );
        assert!(t.max_chain() < 16, "max chain {}", t.max_chain());
    }

    #[test]
    fn empty_table_counters() {
        let mut t = ChainedHashTable::new(4, 0);
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        assert_eq!(t.mean_probes(), 0.0);
        assert_eq!(t.max_chain(), 0);
    }
}
