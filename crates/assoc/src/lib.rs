//! # hbm-assoc — the direct-mapped HBM transformation (paper §2)
//!
//! Real HBM-as-cache hardware is direct-mapped (KNL, Sapphire Rapids), but
//! the paper's theory assumes full associativity. Lemma 1 bridges the gap:
//! a program written for a size-`k` fully-associative HBM with LRU or FIFO
//! replacement can be automatically transformed to run on a direct-mapped
//! cache of size Θ(k) with constant-factor overhead; Theorem 4 bounds the
//! extra parallel cost at O(log q) (FIFO) / O(log p) (LRU); Corollary 1
//! concludes direct-mapped and fully-associative HBM are asymptotically
//! equivalent for q = O(1).
//!
//! This crate implements the whole construction so the constants can be
//! *measured*:
//!
//! * [`hashing`] — a 2-universal Carter–Wegman family (Mersenne-prime
//!   arithmetic);
//! * [`chained`] — the chaining hash table with probe accounting (expected
//!   O(1) chains at load 1);
//! * [`transform`] — the transformed cache, the fully-associative
//!   reference it must replicate exactly, the no-transformation
//!   direct-mapped baseline, and [`transform::measure_overhead`];
//! * [`batch`] — Theorem 4's lazy-removal list with prefix-sum batch
//!   front-insertion and round accounting.
//!
//! ```
//! use hbm_assoc::transform::{measure_overhead, Discipline};
//!
//! // A skewed stream over 100 pages through a 32-slot cache.
//! let stream: Vec<u64> = (0..5000u64).map(|i| (i * i) % 100).collect();
//! let o = measure_overhead(&stream, 32, Discipline::Lru, 7);
//! assert_eq!(o.reference_misses, o.transformed_misses);
//! assert!(o.transfers_per_miss <= 2.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod chained;
pub mod hashing;
pub mod transform;

pub use batch::BatchList;
pub use chained::ChainedHashTable;
pub use hashing::CarterWegman;
pub use transform::{measure_overhead, Discipline, Overhead, TransformedCache};
