//! A 2-universal hash family (Carter–Wegman over a Mersenne prime).
//!
//! Lemma 1 of the paper requires "a 2-universal family of hash functions
//! [45]" so that with `k` cached blocks the expected chain length in the
//! simulated-associativity hash table is O(1). We implement the classic
//! `h_{a,b}(x) = ((a·x + b) mod p) mod m` with `p = 2^61 − 1`, whose
//! mod-p arithmetic reduces to shifts and adds.

use hbm_core::rng::Xoshiro256;

/// The Mersenne prime 2^61 − 1.
pub const MERSENNE_61: u64 = (1 << 61) - 1;

/// Reduces a 128-bit product modulo 2^61 − 1.
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    // x = hi·2^61 + lo  ≡  hi + lo (mod 2^61 − 1), applied twice.
    let lo = (x as u64) & MERSENNE_61;
    let hi = (x >> 61) as u64;
    // hi can itself exceed the modulus (x up to 2^128), so fold twice.
    let hi_lo = hi & MERSENNE_61;
    let hi_hi = hi >> 61;
    let mut s = lo + hi_lo + hi_hi;
    while s >= MERSENNE_61 {
        s -= MERSENNE_61;
    }
    s
}

/// One member of the Carter–Wegman family: `x ↦ ((a·x + b) mod p) mod m`.
#[derive(Debug, Clone, Copy)]
pub struct CarterWegman {
    a: u64,
    b: u64,
}

impl CarterWegman {
    /// Draws a random member of the family (`a ∈ [1, p)`, `b ∈ [0, p)`).
    pub fn random(rng: &mut Xoshiro256) -> Self {
        CarterWegman {
            a: 1 + rng.gen_range(MERSENNE_61 - 1),
            b: rng.gen_range(MERSENNE_61),
        }
    }

    /// A fixed member from a seed (deterministic experiments).
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ SEED_TAG);
        Self::random(&mut rng)
    }

    /// Hashes `x` into `[0, m)`.
    #[inline]
    pub fn hash(&self, x: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        let v = mod_mersenne(self.a as u128 * (x & MERSENNE_61) as u128 + self.b as u128);
        (v % m as u64) as usize
    }
}

/// Domain-separation tag so assoc hash seeds never collide with the
/// simulator's policy seeds derived from the same master seed.
const SEED_TAG: u64 = (0x02b1_dea1_u64 << 32) | 0x7a6b_1e55;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_mersenne_agrees_with_wide_arithmetic() {
        for x in [
            0u128,
            1,
            MERSENNE_61 as u128,
            u64::MAX as u128,
            u128::MAX >> 6,
        ] {
            assert_eq!(mod_mersenne(x), (x % MERSENNE_61 as u128) as u64, "x={x}");
        }
    }

    #[test]
    fn hash_stays_in_range() {
        let h = CarterWegman::from_seed(1);
        for m in [1usize, 2, 7, 64, 1000] {
            for x in 0u64..200 {
                assert!(h.hash(x, m) < m);
            }
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = CarterWegman::from_seed(9);
        let b = CarterWegman::from_seed(9);
        for x in 0..100u64 {
            assert_eq!(a.hash(x, 97), b.hash(x, 97));
        }
    }

    #[test]
    fn different_members_differ() {
        let a = CarterWegman::from_seed(1);
        let b = CarterWegman::from_seed(2);
        let same = (0..200u64)
            .filter(|&x| a.hash(x, 1 << 20) == b.hash(x, 1 << 20))
            .count();
        assert!(same < 5);
    }

    #[test]
    fn collision_probability_is_near_universal() {
        // For random pairs, Pr[collision] should be close to 1/m.
        let mut rng = Xoshiro256::seed_from_u64(3);
        let h = CarterWegman::random(&mut rng);
        let m = 256usize;
        let trials = 20_000;
        let mut collisions = 0;
        for _ in 0..trials {
            let x = rng.next_u64() & MERSENNE_61;
            let y = rng.next_u64() & MERSENNE_61;
            if x != y && h.hash(x, m) == h.hash(y, m) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!(
            rate < 3.0 / m as f64,
            "collision rate {rate} vs 1/m {}",
            1.0 / m as f64
        );
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential page ids must not all land in few buckets.
        let h = CarterWegman::from_seed(5);
        let m = 128usize;
        let mut counts = vec![0u32; m];
        for x in 0..1280u64 {
            counts[h.hash(x, m)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max <= 30, "max bucket load {max} for mean 10");
    }
}
