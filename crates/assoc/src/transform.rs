//! The Lemma 1 transformation: running an LRU/FIFO fully-associative
//! program on a direct-mapped HBM with constant-factor overhead.
//!
//! The transformed program keeps two Θ(k) metadata structures in HBM — a
//! chained hash table mapping user DRAM addresses to cache slots, and a
//! doubly-linked list holding the eviction order — and a Θ(k) program-data
//! region. Because the direct map is a bijection between HBM slots and a
//! set of "Cache DRAM" addresses, the transformation *chooses* each page's
//! slot, so there are no conflict misses: every original miss becomes O(1)
//! transformed misses (fetch + write-back) and every original hit becomes
//! O(1) transformed hits (hash probes + list touch + data access), in
//! expectation over the 2-universal hash draw.
//!
//! [`TransformedCache`] counts those quantities so Lemma 1's constants can
//! be measured; [`FullyAssociative`] is the reference it must mimic
//! *exactly* (same hit/miss sequence), and [`PlainDirectMapped`] shows what
//! goes wrong *without* the transformation (conflict misses).

use crate::chained::ChainedHashTable;
use crate::hashing::CarterWegman;
use hbm_core::slab_list::SlabList;

/// Replacement discipline simulated by the transformation (Lemma 1 covers
/// both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Least-recently-used: list touched on every access.
    Lru,
    /// First-in-first-out: list touched only on misses (Theorem 4's cheap
    /// case).
    Fifo,
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Did the (logical) access hit in the cache?
    pub hit: bool,
    /// HBM accesses the transformed program performed for it (hash probes +
    /// list pointers + the data access itself).
    pub hbm_accesses: u64,
    /// Far-channel block transfers (fetch + optional write-back).
    pub transfers: u64,
}

/// Reference model: a size-`k` fully-associative cache with LRU or FIFO.
#[derive(Debug)]
pub struct FullyAssociative {
    map: std::collections::HashMap<u64, u32>,
    order: SlabList,
    slot_page: Vec<u64>,
    free: Vec<u32>,
    discipline: Discipline,
    /// Total hits so far.
    pub hits: u64,
    /// Total misses so far.
    pub misses: u64,
}

impl FullyAssociative {
    /// A fully-associative cache of `k` slots.
    pub fn new(k: usize, discipline: Discipline) -> Self {
        assert!(k > 0);
        FullyAssociative {
            map: std::collections::HashMap::new(),
            order: SlabList::new(k),
            slot_page: vec![0; k],
            free: (0..k as u32).rev().collect(),
            discipline,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `page`; returns true on hit.
    pub fn access(&mut self, page: u64) -> bool {
        if let Some(&slot) = self.map.get(&page) {
            self.hits += 1;
            if self.discipline == Discipline::Lru {
                self.order.move_to_back(slot);
            }
            return true;
        }
        self.misses += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let victim = self.order.pop_front().expect("full cache has a front");
                self.map.remove(&self.slot_page[victim as usize]);
                victim
            }
        };
        self.slot_page[slot as usize] = page;
        self.map.insert(page, slot);
        self.order.push_back(slot);
        false
    }
}

/// The transformed program of Lemma 1 on a direct-mapped HBM of `c·k`
/// slots (metadata accounted separately; see module docs).
#[derive(Debug)]
pub struct TransformedCache {
    table: ChainedHashTable,
    order: SlabList,
    slot_page: Vec<u64>,
    free: Vec<u32>,
    discipline: Discipline,
    /// Logical hits.
    pub hits: u64,
    /// Logical misses.
    pub misses: u64,
    /// All HBM accesses performed (metadata + data).
    pub hbm_accesses: u64,
    /// Far-channel transfers performed (fetches + write-backs).
    pub transfers: u64,
}

impl TransformedCache {
    /// A transformation over `k` data slots; the hash table gets `k`
    /// buckets as in the lemma ("a size k hash table").
    pub fn new(k: usize, discipline: Discipline, seed: u64) -> Self {
        assert!(k > 0);
        TransformedCache {
            table: ChainedHashTable::new(k, seed),
            order: SlabList::new(k),
            slot_page: vec![0; k],
            free: (0..k as u32).rev().collect(),
            discipline,
            hits: 0,
            misses: 0,
            hbm_accesses: 0,
            transfers: 0,
        }
    }

    /// Mean metadata probes per operation (the hash table's O(1) check).
    pub fn mean_probes(&self) -> f64 {
        self.table.mean_probes()
    }

    /// Accesses `page` through the transformation.
    pub fn access(&mut self, page: u64) -> Access {
        let probes_before = self.table.total_probes();
        if let Some(slot) = self.table.get(page) {
            // Hit: hash probes + (LRU only) 2 list-pointer touches + the
            // data access itself.
            self.hits += 1;
            let mut cost = self.table.total_probes() - probes_before + 1;
            if self.discipline == Discipline::Lru {
                self.order.move_to_back(slot);
                cost += 2;
            }
            self.hbm_accesses += cost;
            return Access {
                hit: true,
                hbm_accesses: cost,
                transfers: 0,
            };
        }
        // Miss: maybe evict (write-back = 1 transfer, hash remove, list
        // unlink), then fetch (1 transfer), hash insert, list push.
        self.misses += 1;
        let mut transfers = 1; // the fetch
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let victim = self.order.pop_front().expect("full cache has a front");
                let old = self.slot_page[victim as usize];
                self.table.remove(old);
                transfers += 1; // copy Cache-DRAM back to user DRAM
                victim
            }
        };
        self.slot_page[slot as usize] = page;
        self.table.insert(page, slot);
        self.order.push_back(slot);
        let cost = self.table.total_probes() - probes_before + 3; // data + 2 list ptrs
        self.hbm_accesses += cost;
        self.transfers += transfers;
        Access {
            hit: false,
            hbm_accesses: cost,
            transfers,
        }
    }
}

/// Baseline: a plain direct-mapped cache with *no* transformation — the
/// page's slot is forced to `hash(page) mod k`, so distinct hot pages can
/// conflict. This is what Lemma 1 saves us from.
#[derive(Debug)]
pub struct PlainDirectMapped {
    slots: Vec<Option<u64>>,
    hash: CarterWegman,
    /// Total hits so far.
    pub hits: u64,
    /// Total misses so far.
    pub misses: u64,
}

impl PlainDirectMapped {
    /// A direct-mapped cache of `k` slots.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0);
        PlainDirectMapped {
            slots: vec![None; k],
            hash: CarterWegman::from_seed(seed),
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `page`; returns true on hit.
    pub fn access(&mut self, page: u64) -> bool {
        let s = self.hash.hash(page, self.slots.len());
        if self.slots[s] == Some(page) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.slots[s] = Some(page);
            false
        }
    }
}

/// Overhead comparison of the transformation against the fully-associative
/// reference on one reference stream.
#[derive(Debug, Clone, Copy)]
pub struct Overhead {
    /// Reference misses (fully associative).
    pub reference_misses: u64,
    /// Transformed logical misses — must equal the reference.
    pub transformed_misses: u64,
    /// Transformed far-channel transfers per reference miss (Lemma 1: O(1),
    /// ≤ 2 by construction).
    pub transfers_per_miss: f64,
    /// Transformed HBM accesses per original access (Lemma 1: O(1) in
    /// expectation).
    pub accesses_per_access: f64,
    /// Plain direct-mapped misses on the same stream (the conflict-miss
    /// baseline).
    pub plain_direct_misses: u64,
}

/// Runs `stream` through all three models with cache size `k` and reports
/// the Lemma 1 constants.
pub fn measure_overhead(stream: &[u64], k: usize, discipline: Discipline, seed: u64) -> Overhead {
    let mut reference = FullyAssociative::new(k, discipline);
    let mut transformed = TransformedCache::new(k, discipline, seed);
    let mut plain = PlainDirectMapped::new(k, seed);
    for &page in stream {
        let ref_hit = reference.access(page);
        let t = transformed.access(page);
        assert_eq!(
            ref_hit, t.hit,
            "transformation must replicate the reference hit/miss sequence"
        );
        plain.access(page);
    }
    Overhead {
        reference_misses: reference.misses,
        transformed_misses: transformed.misses,
        transfers_per_miss: if transformed.misses == 0 {
            0.0
        } else {
            transformed.transfers as f64 / transformed.misses as f64
        },
        accesses_per_access: if stream.is_empty() {
            0.0
        } else {
            transformed.hbm_accesses as f64 / stream.len() as f64
        },
        plain_direct_misses: plain.misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbm_core::rng::Xoshiro256;

    fn zipf_stream(n: usize, pages: u64, seed: u64) -> Vec<u64> {
        // Quick skewed stream: square a uniform draw to favour low pages.
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u = rng.gen_f64();
                ((u * u) * pages as f64) as u64
            })
            .collect()
    }

    #[test]
    fn fully_associative_lru_classic_sequence() {
        let mut c = FullyAssociative::new(2, Discipline::Lru);
        // A B A C A: C evicts B (LRU), A stays.
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1));
        assert!(!c.access(3)); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2)); // 2 was evicted
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 4);
    }

    #[test]
    fn fully_associative_fifo_ignores_hits() {
        let mut c = FullyAssociative::new(2, Discipline::Fifo);
        c.access(1);
        c.access(2);
        c.access(1); // hit, but 1 remains first-in
        c.access(3); // evicts 1 under FIFO
        assert!(!c.access(1), "1 must have been evicted under FIFO");
    }

    #[test]
    fn transformation_replicates_reference_exactly() {
        for discipline in [Discipline::Lru, Discipline::Fifo] {
            let stream = zipf_stream(20_000, 500, 11);
            let o = measure_overhead(&stream, 128, discipline, 5);
            assert_eq!(o.reference_misses, o.transformed_misses);
        }
    }

    #[test]
    fn transfers_per_miss_at_most_two() {
        let stream = zipf_stream(10_000, 400, 3);
        let o = measure_overhead(&stream, 64, Discipline::Lru, 1);
        assert!(o.transfers_per_miss <= 2.0);
        assert!(o.transfers_per_miss >= 1.0);
    }

    #[test]
    fn accesses_per_access_is_small_constant() {
        // Lemma 1's expectation bound: with k buckets for <= k cached pages,
        // mean chain length is O(1), so total per-access cost is a small
        // constant (hash probe + 2 list pointers + data).
        let stream = zipf_stream(50_000, 2000, 7);
        let o = measure_overhead(&stream, 512, Discipline::Lru, 9);
        assert!(
            o.accesses_per_access < 8.0,
            "per-access overhead {} should be O(1)",
            o.accesses_per_access
        );
    }

    #[test]
    fn plain_direct_mapping_suffers_conflicts() {
        // A working set that fits associatively but conflicts directly:
        // k pages cycled in a k-slot cache. Fully associative: only cold
        // misses after the first lap; direct-mapped: collisions guarantee
        // extra misses with overwhelming probability at this size.
        let k = 256usize;
        let laps = 50;
        let mut stream = Vec::new();
        for _ in 0..laps {
            // Page ids spread over a huge space so the direct map collides.
            stream.extend((0..k as u64).map(|i| i * 1_000_003));
        }
        let o = measure_overhead(&stream, k, Discipline::Lru, 2);
        assert_eq!(o.reference_misses, k as u64, "assoc: cold misses only");
        assert!(
            o.plain_direct_misses > 4 * o.reference_misses,
            "direct mapping should conflict-miss heavily: {} vs {}",
            o.plain_direct_misses,
            o.reference_misses
        );
    }

    #[test]
    fn empty_stream() {
        let o = measure_overhead(&[], 8, Discipline::Lru, 0);
        assert_eq!(o.reference_misses, 0);
        assert_eq!(o.accesses_per_access, 0.0);
    }

    #[test]
    fn single_page_stream() {
        let stream = vec![42u64; 100];
        let o = measure_overhead(&stream, 4, Discipline::Fifo, 0);
        assert_eq!(o.reference_misses, 1);
        assert_eq!(o.transfers_per_miss, 1.0, "nothing to write back");
    }
}
