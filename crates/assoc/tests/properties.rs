//! Property-based tests for the direct-mapped transformation (Lemma 1).

use hbm_assoc::batch::BatchList;
use hbm_assoc::chained::ChainedHashTable;
use hbm_assoc::transform::{measure_overhead, Discipline, FullyAssociative, TransformedCache};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The transformed cache replicates the fully-associative reference's
    /// hit/miss sequence exactly, for arbitrary streams, sizes, hash seeds,
    /// and both disciplines.
    #[test]
    fn transformation_is_exact(
        stream in prop::collection::vec(0u64..500, 1..2000),
        k in 1usize..64,
        discipline_lru in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let d = if discipline_lru { Discipline::Lru } else { Discipline::Fifo };
        let mut reference = FullyAssociative::new(k, d);
        let mut transformed = TransformedCache::new(k, d, seed);
        for &p in &stream {
            prop_assert_eq!(reference.access(p), transformed.access(p).hit);
        }
        prop_assert_eq!(reference.hits, transformed.hits);
        prop_assert_eq!(reference.misses, transformed.misses);
    }

    /// Lemma 1's constants: ≤ 2 transfers per miss, bounded expected
    /// per-access cost.
    #[test]
    fn overhead_constants(
        stream in prop::collection::vec(0u64..2000, 1..3000),
        k in 32usize..256,
        seed in 0u64..100,
    ) {
        let o = measure_overhead(&stream, k, Discipline::Lru, seed);
        prop_assert!(o.transfers_per_miss <= 2.0);
        prop_assert!(o.transfers_per_miss >= 1.0 || o.reference_misses == 0);
        // O(1) *in expectation over the hash draw*; 16 is a loose cap that
        // still fails if chains grow with k. Tiny tables (k < 32) are
        // excluded — a single unlucky draw there can chain most of the
        // table, which the lemma's expectation bound permits.
        prop_assert!(o.accesses_per_access < 16.0);
    }

    /// The chained hash table behaves like std's HashMap under arbitrary
    /// operation sequences.
    #[test]
    fn hash_table_matches_std(
        ops in prop::collection::vec((0u8..3, 0u64..50, 0u32..1000), 0..400),
        m in 1usize..64,
        seed in 0u64..100,
    ) {
        let mut ours = ChainedHashTable::new(m, seed);
        let mut std_map = std::collections::HashMap::new();
        for (op, key, value) in ops {
            match op {
                0 => {
                    prop_assert_eq!(ours.insert(key, value), std_map.insert(key, value));
                }
                1 => {
                    prop_assert_eq!(ours.get(key), std_map.get(&key).copied());
                }
                _ => {
                    prop_assert_eq!(ours.remove(key), std_map.remove(&key));
                }
            }
            prop_assert_eq!(ours.len(), std_map.len());
        }
    }

    /// BatchList front-insertion order matches a sequential reference for
    /// arbitrary unique batches.
    #[test]
    fn batch_list_matches_reference(
        batches in prop::collection::vec(
            prop::collection::btree_set(0u64..30, 1..6),
            1..40,
        ),
    ) {
        let mut l = BatchList::new();
        let mut reference: Vec<u64> = Vec::new();
        for batch in batches {
            let vals: Vec<u64> = batch.into_iter().collect();
            l.batch_move_to_front(&vals);
            reference.retain(|v| !vals.contains(v));
            for &v in vals.iter().rev() {
                reference.insert(0, v);
            }
            prop_assert_eq!(l.iter_live().collect::<Vec<_>>(), reference.clone());
        }
        // Drain and compare.
        while let Some(v) = l.pop_front_live() {
            prop_assert_eq!(v, reference.remove(0));
        }
        prop_assert!(reference.is_empty());
    }

    /// Prefix sums are exact for arbitrary inputs and use ⌈log₂ n⌉ rounds.
    #[test]
    fn prefix_sum_exact(input in prop::collection::vec(0u64..1000, 0..200)) {
        let (scan, rounds) = hbm_assoc::batch::prefix_sum_rounds(&input);
        let mut acc = 0u64;
        for (i, &x) in input.iter().enumerate() {
            prop_assert_eq!(scan[i], acc);
            acc += x;
        }
        let expected_rounds = if input.len() <= 1 {
            0
        } else {
            usize::BITS - (input.len() - 1).leading_zeros()
        };
        prop_assert_eq!(rounds, expected_rounds);
    }
}
