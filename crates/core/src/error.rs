//! Typed error hierarchy for simulation setup and execution.
//!
//! User-input paths (configuration, fault plans, trace files) must never
//! panic: they return [`ConfigError`] / [`SimError`] values that callers can
//! match on, log, or surface per-cell in a sweep instead of poisoning a
//! whole run. The legacy panicking entry points ([`crate::SimBuilder::run`])
//! are thin wrappers over the fallible ones.

use crate::ids::Tick;
use std::fmt;

/// A structurally invalid simulation configuration or fault plan.
///
/// Produced by [`crate::SimConfig::validate`], [`crate::FaultPlan::validate`]
/// and the `try_*` builder entry points. Each variant pinpoints the exact
/// parameter so harnesses can report it without string matching.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `hbm_slots` (k) was 0; the HBM needs at least one block slot.
    ZeroHbmSlots,
    /// `channels` (q) was 0; the model requires `1 ≤ q`.
    ZeroChannels,
    /// `far_latency` was 0; a transfer takes at least one tick.
    ZeroFarLatency,
    /// A priority-family arbitration was configured with remap period 0.
    ZeroRemapPeriod,
    /// A fault window with `start >= end` (empty or inverted).
    EmptyFaultWindow {
        /// Window start tick (inclusive).
        start: Tick,
        /// Window end tick (exclusive).
        end: Tick,
    },
    /// An outage window disabling zero channels (a no-op window is almost
    /// certainly a harness bug).
    ZeroOutageChannels {
        /// Window start tick.
        start: Tick,
    },
    /// A degradation window adding zero extra latency.
    ZeroDegradationLatency {
        /// Window start tick.
        start: Tick,
    },
    /// A transient-fault probability outside `[0, 1]` or not finite.
    InvalidFailProbability {
        /// The offending value.
        value: f64,
    },
    /// A transient-fault spec with `max_retries == 0`: the retry bound is
    /// what guarantees progress, so it must be at least 1.
    ZeroRetryBound,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroHbmSlots => write!(f, "hbm_slots must be ≥ 1"),
            ConfigError::ZeroChannels => write!(f, "channels (q) must be ≥ 1"),
            ConfigError::ZeroFarLatency => write!(f, "far_latency must be ≥ 1 tick"),
            ConfigError::ZeroRemapPeriod => write!(f, "remap period T must be ≥ 1 tick"),
            ConfigError::EmptyFaultWindow { start, end } => {
                write!(
                    f,
                    "fault window [{start}, {end}) is empty (start must be < end)"
                )
            }
            ConfigError::ZeroOutageChannels { start } => {
                write!(f, "outage window starting at {start} disables 0 channels")
            }
            ConfigError::ZeroDegradationLatency { start } => {
                write!(f, "degradation window starting at {start} adds 0 latency")
            }
            ConfigError::InvalidFailProbability { value } => {
                write!(f, "transient fail probability {value} is not in [0, 1]")
            }
            ConfigError::ZeroRetryBound => {
                write!(
                    f,
                    "transient max_retries must be ≥ 1 (the bound guarantees progress)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Any error a fallible simulation entry point can return.
///
/// Today the only failure mode is an invalid configuration; the enum exists
/// so trace-replay and checkpoint errors can join it without breaking
/// signatures.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration or fault plan failed validation.
    Config(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_parameter() {
        assert!(ConfigError::ZeroHbmSlots.to_string().contains("hbm_slots"));
        assert!(ConfigError::ZeroChannels.to_string().contains("channels"));
        assert!(ConfigError::EmptyFaultWindow { start: 5, end: 5 }
            .to_string()
            .contains("[5, 5)"));
        let sim: SimError = ConfigError::ZeroRetryBound.into();
        assert!(sim.to_string().contains("max_retries"));
    }

    #[test]
    fn sim_error_sources_config_error() {
        use std::error::Error;
        let e: SimError = ConfigError::ZeroChannels.into();
        assert!(e.source().is_some());
    }
}
