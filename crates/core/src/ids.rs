//! Strongly-typed identifiers used throughout the simulator.
//!
//! The HBM+DRAM model (paper §2) works with three kinds of identity:
//! simulation time (*ticks*), cores, and pages. Per Property 1 of §3, the
//! sets of pages accessed by each core are mutually exclusive, so a global
//! page identity is the pair *(core, local page)*. We pack that pair into a
//! single `u64` ([`GlobalPage`]) so the HBM residency structures can key on
//! one word.

use serde::{Deserialize, Serialize};

/// Simulation time, measured in ticks of the model's synchronous clock.
///
/// One tick is the time to transfer one block across any single channel
/// (HBM→core or DRAM→HBM); the paper normalizes both to 1.
pub type Tick = u64;

/// Index of a core, `0..p`.
pub type CoreId = u32;

/// A page identifier local to one core's request sequence.
///
/// Traces are stored per-core with local ids; the simulator namespaces them
/// into [`GlobalPage`]s, which keeps trace storage at 4 bytes per reference.
pub type LocalPage = u32;

/// A globally unique page: the pair *(core, local page)* packed as
/// `(core as u64) << 32 | local`.
///
/// Because request sequences are disjoint across cores (Property 1, §3),
/// this packing is a bijection onto the set of pages any workload can touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalPage(pub u64);

impl GlobalPage {
    /// Packs a core id and a core-local page id into a global page.
    #[inline]
    pub fn new(core: CoreId, local: LocalPage) -> Self {
        GlobalPage(((core as u64) << 32) | local as u64)
    }

    /// The core whose namespace this page belongs to.
    #[inline]
    pub fn core(self) -> CoreId {
        (self.0 >> 32) as CoreId
    }

    /// The core-local page id.
    #[inline]
    pub fn local(self) -> LocalPage {
        self.0 as u32
    }
}

impl std::fmt::Display for GlobalPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.core(), self.local())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let g = GlobalPage::new(7, 123_456);
        assert_eq!(g.core(), 7);
        assert_eq!(g.local(), 123_456);
    }

    #[test]
    fn distinct_cores_distinct_pages() {
        assert_ne!(GlobalPage::new(0, 5), GlobalPage::new(1, 5));
        assert_ne!(GlobalPage::new(2, 0), GlobalPage::new(0, 2));
    }

    #[test]
    fn extreme_values_roundtrip() {
        let g = GlobalPage::new(u32::MAX, u32::MAX);
        assert_eq!(g.core(), u32::MAX);
        assert_eq!(g.local(), u32::MAX);
    }

    #[test]
    fn display_is_core_colon_local() {
        assert_eq!(GlobalPage::new(3, 9).to_string(), "3:9");
    }
}
