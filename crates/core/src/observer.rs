//! Observation hooks into the tick loop.
//!
//! Tests, trace debuggers, and custom metrics can watch every simulator
//! event without the engine paying for it: the engine is generic over the
//! observer, and the default [`NoopObserver`]'s empty inline methods
//! compile to nothing.

use crate::ids::{CoreId, GlobalPage, Tick};

/// One injected-fault occurrence, reported through
/// [`SimObserver::on_fault`]. Window events fire on the boundary tick;
/// fetch-level events fire on the tick the affected transfer *starts*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// An outage window began: `down` channels are now unavailable for new
    /// transfers.
    OutageStart {
        /// Channels taken down by this window.
        down: usize,
    },
    /// An outage window ended: `restored` channels are available again.
    OutageEnd {
        /// Channels restored by this window's end.
        restored: usize,
    },
    /// A fetch started inside a degradation window.
    DegradedFetch {
        /// The fetching core.
        core: CoreId,
        /// The page being transferred.
        page: GlobalPage,
        /// Extra ticks added to the transfer.
        extra_latency: u64,
    },
    /// A transfer suffered transient failures before succeeding.
    TransientFailure {
        /// The fetching core.
        core: CoreId,
        /// The page being transferred.
        page: GlobalPage,
        /// Failed attempts (1 ≤ `failures` ≤ the plan's `max_retries`).
        failures: u32,
    },
}

/// Receives one callback per simulator event.
///
/// Within a tick the engine guarantees the call order: `on_tick_start`,
/// outage-window `on_fault`s, `on_remap?`, `on_enqueue*`, `on_evict*`,
/// `on_serve*`, then fetch-start `on_fault`s interleaved before their
/// transfers' `on_fetch*` landings.
pub trait SimObserver {
    /// A tick begins.
    #[inline]
    fn on_tick_start(&mut self, _tick: Tick) {}

    /// Priorities were re-permuted (step 1).
    #[inline]
    fn on_remap(&mut self, _tick: Tick) {}

    /// A missing request entered the DRAM queue (step 2).
    #[inline]
    fn on_enqueue(&mut self, _tick: Tick, _core: CoreId, _page: GlobalPage) {}

    /// A page was evicted from HBM (step 3).
    #[inline]
    fn on_evict(&mut self, _tick: Tick, _page: GlobalPage) {}

    /// A page was served to its core (step 4). `response` is the paper's
    /// `w_j^i`; `hit` is true when the request never crossed a far channel.
    #[inline]
    fn on_serve(
        &mut self,
        _tick: Tick,
        _core: CoreId,
        _page: GlobalPage,
        _response: u64,
        _hit: bool,
    ) {
    }

    /// A page was fetched from DRAM into HBM over a far channel (step 5).
    #[inline]
    fn on_fetch(&mut self, _tick: Tick, _core: CoreId, _page: GlobalPage) {}

    /// A core served its final reference.
    #[inline]
    fn on_core_done(&mut self, _tick: Tick, _core: CoreId) {}

    /// An injected fault fired (see [`FaultEvent`] for the taxonomy).
    /// Never called on runs without an active [`crate::FaultPlan`].
    #[inline]
    fn on_fault(&mut self, _tick: Tick, _event: FaultEvent) {}
}

/// The do-nothing observer; the engine's default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

/// Records every event into vectors — test and debugging aid. Memory grows
/// with the event count, so use only on small runs.
#[derive(Debug, Default, Clone)]
pub struct RecordingObserver {
    /// `(tick, core, page)` for each enqueue.
    pub enqueues: Vec<(Tick, CoreId, GlobalPage)>,
    /// `(tick, page)` for each eviction.
    pub evictions: Vec<(Tick, GlobalPage)>,
    /// `(tick, core, page, response, hit)` for each serve.
    pub serves: Vec<(Tick, CoreId, GlobalPage, u64, bool)>,
    /// `(tick, core, page)` for each fetch.
    pub fetches: Vec<(Tick, CoreId, GlobalPage)>,
    /// Ticks at which priorities were remapped.
    pub remaps: Vec<Tick>,
    /// `(tick, core)` completion events.
    pub completions: Vec<(Tick, CoreId)>,
    /// `(tick, event)` for each injected fault.
    pub faults: Vec<(Tick, FaultEvent)>,
}

impl SimObserver for RecordingObserver {
    fn on_remap(&mut self, tick: Tick) {
        self.remaps.push(tick);
    }

    fn on_enqueue(&mut self, tick: Tick, core: CoreId, page: GlobalPage) {
        self.enqueues.push((tick, core, page));
    }

    fn on_evict(&mut self, tick: Tick, page: GlobalPage) {
        self.evictions.push((tick, page));
    }

    fn on_serve(&mut self, tick: Tick, core: CoreId, page: GlobalPage, response: u64, hit: bool) {
        self.serves.push((tick, core, page, response, hit));
    }

    fn on_fetch(&mut self, tick: Tick, core: CoreId, page: GlobalPage) {
        self.fetches.push((tick, core, page));
    }

    fn on_core_done(&mut self, tick: Tick, core: CoreId) {
        self.completions.push((tick, core));
    }

    fn on_fault(&mut self, tick: Tick, event: FaultEvent) {
        self.faults.push((tick, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_observer_accumulates() {
        let mut o = RecordingObserver::default();
        o.on_remap(3);
        o.on_enqueue(3, 1, GlobalPage::new(1, 9));
        o.on_serve(4, 1, GlobalPage::new(1, 9), 2, false);
        o.on_core_done(4, 1);
        assert_eq!(o.remaps, vec![3]);
        assert_eq!(o.enqueues.len(), 1);
        assert_eq!(o.serves[0].3, 2);
        assert_eq!(o.completions, vec![(4, 1)]);
    }

    #[test]
    fn fault_events_recorded() {
        let mut o = RecordingObserver::default();
        o.on_fault(7, FaultEvent::OutageStart { down: 2 });
        o.on_fault(
            9,
            FaultEvent::TransientFailure {
                core: 1,
                page: GlobalPage::new(1, 3),
                failures: 2,
            },
        );
        assert_eq!(o.faults.len(), 2);
        assert_eq!(o.faults[0], (7, FaultEvent::OutageStart { down: 2 }));
    }

    #[test]
    fn noop_observer_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopObserver>(), 0);
    }
}
