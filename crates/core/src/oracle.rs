//! The oracle engine: a literal, deliberately unoptimized implementation of
//! the paper §3.1 tick loop, used as the reference in differential testing.
//!
//! [`OracleEngine`] executes exactly the same model as [`crate::Engine`] —
//! same [`SimConfig`], [`Workload`], [`Report`], and observer events — but
//! the way the pseudocode reads, with none of the engine's machinery:
//!
//! * **Full scans**: steps 2 and 4 scan *all* `p` cores every tick in
//!   increasing core id (the canonical order, see `engine.rs` module docs),
//!   instead of maintaining incremental `need_issue`/`ready` worklists.
//! * **No hash maps for bookkeeping**: pinned pages live in an association
//!   list searched linearly; the set of cores waiting on a landed page is
//!   recomputed by scanning every core.
//! * **No coalescing shortcuts**: whether a missing page is already queued
//!   or in flight is decided by rescanning all waiting cores, not by a
//!   waiter table.
//!
//! The policy objects themselves ([`crate::hbm::Hbm`] and the
//! [`crate::arbitration`] arbiters) are shared with the fast engine on
//! purpose: they *are* the policy specification (including every RNG draw),
//! and each has its own direct unit tests. What the oracle re-derives
//! independently is the tick loop — scheduling, queueing, pinning, landing,
//! response-time accounting — which is where engine optimizations live and
//! where silent divergence from the model would creep in.
//!
//! Per tick the oracle costs O(p + k); the fast engine costs O(serves + q).
//! The differential suite (`crates/core/tests/differential.rs`) asserts the
//! two produce bit-identical reports and event streams across the policy
//! cross-product.
//!
//! Each tick `t` performs, in order (paper §3.1):
//!
//! 1. if `t` is a multiple of the remap period `T`, remap priorities;
//! 2. for each core's newly issued request: serve marker if resident in
//!    HBM, else enter the DRAM queue (once per distinct page);
//! 3. if the queue holds more requests than HBM has empty slots, evict up
//!    to `q` unpinned pages by the replacement policy;
//! 4. for each core with a resident marked request, serve it;
//! 5. start up to `q` fetches (arbitration order) and land completed
//!    transfers into HBM.

use crate::arbitration::{ArbitrationPolicy, Request};
use crate::config::SimConfig;
use crate::fault::FaultPlan;
use crate::hbm::Hbm;
use crate::ids::{CoreId, Tick};
use crate::metrics::{MetricsCollector, Report};
use crate::observer::{FaultEvent, SimObserver};
use crate::workload::Workload;

/// Per-core state, one struct per core, updated only by full scans.
#[derive(Debug, Clone, Copy)]
struct OracleCore {
    /// Index of the current (unserved) reference.
    pos: usize,
    /// Tick at which the current request was issued.
    issue_tick: Tick,
    /// Whether the current request went through the DRAM queue.
    was_miss: bool,
    /// Tick at which the current request will be served, once known.
    serve_tick: Option<Tick>,
    /// True from the miss being issued until its page lands in HBM.
    waiting: bool,
    /// True once the whole trace is served (or the trace is empty).
    finished: bool,
}

/// The reference implementation of the §3.1 tick loop. Construct with
/// [`OracleEngine::new`], then [`step`](Self::step) or
/// [`run`](Self::run) exactly like [`crate::Engine`].
pub struct OracleEngine<'w> {
    config: SimConfig,
    workload: &'w Workload,
    hbm: Hbm,
    arbiter: Box<dyn ArbitrationPolicy>,
    cores: Vec<OracleCore>,
    /// Pinned pages with waiter counts, as an association list.
    pinned: Vec<(u64, u32)>,
    /// Fetches currently crossing a far channel: `(arrival_tick, request)`.
    in_flight: Vec<(Tick, Request)>,
    /// Per-channel busy-until tick.
    channel_busy: Vec<Tick>,
    /// The injected fault schedule (empty by default), evaluated tick by
    /// tick with no batching — the literal counterpart of the fast
    /// engine's boundary-clamped fast-forward.
    plan: FaultPlan,
    /// `!plan.is_empty()`, mirroring the fast engine's gate.
    plan_active: bool,
    /// Channels down at the previous tick, for outage-transition events.
    last_down: usize,
    metrics: MetricsCollector,
    tick: Tick,
    remaining: usize,
    makespan: Tick,
}

impl<'w> OracleEngine<'w> {
    /// Prepares a run of `workload` under `config`.
    pub fn new(config: SimConfig, workload: &'w Workload) -> Self {
        Self::with_faults(config, FaultPlan::default(), workload)
    }

    /// Prepares a run over a shared pre-indexed workload (the counterpart
    /// of [`crate::Engine::from_flat`]). The oracle deliberately ignores
    /// the flattened arrays — it replays references straight from the
    /// workload handle inside the `FlatWorkload`, staying the naive
    /// reference implementation — so its trajectory is identical whether
    /// built from an owned workload or a shared one.
    pub fn from_flat(
        config: SimConfig,
        faults: FaultPlan,
        flat: &'w crate::flat::FlatWorkload,
    ) -> Self {
        Self::with_faults(config, faults, flat.workload())
    }

    /// Like [`new`](Self::new), but with an injected [`FaultPlan`] —
    /// identical fault semantics to [`crate::Engine::with_faults`].
    pub fn with_faults(config: SimConfig, faults: FaultPlan, workload: &'w Workload) -> Self {
        let p = workload.cores();
        let mut cores = Vec::with_capacity(p);
        let mut remaining = 0;
        for c in 0..p {
            let empty = workload.trace(c as CoreId).is_empty();
            cores.push(OracleCore {
                pos: 0,
                issue_tick: 0,
                was_miss: false,
                serve_tick: None,
                waiting: false,
                finished: empty,
            });
            if !empty {
                remaining += 1;
            }
        }
        OracleEngine {
            hbm: Hbm::new(config.hbm_slots, config.replacement, config.seed),
            arbiter: config.arbitration.build(p, config.seed),
            cores,
            pinned: Vec::new(),
            in_flight: Vec::new(),
            channel_busy: vec![0; config.channels],
            plan_active: !faults.is_empty(),
            plan: faults,
            last_down: 0,
            metrics: MetricsCollector::new(p),
            tick: 0,
            remaining,
            makespan: 0,
            config,
            workload,
        }
    }

    /// The tick about to execute (0 before the first [`step`](Self::step)).
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// True once every core has served its whole trace.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    fn pin(&mut self, page: u64) {
        for entry in &mut self.pinned {
            if entry.0 == page {
                entry.1 += 1;
                return;
            }
        }
        self.pinned.push((page, 1));
    }

    fn unpin(&mut self, page: u64) {
        for (i, entry) in self.pinned.iter_mut().enumerate() {
            if entry.0 == page {
                entry.1 -= 1;
                if entry.1 == 0 {
                    self.pinned.remove(i);
                }
                return;
            }
        }
        panic!("unpin of unpinned page {page}");
    }

    fn is_pinned(&self, page: u64) -> bool {
        self.pinned.iter().any(|&(p, _)| p == page)
    }

    /// Is some core already waiting on `page` (queued or in flight)?
    fn page_covered(&self, page: u64) -> bool {
        (0..self.cores.len()).any(|c| {
            let st = &self.cores[c];
            st.waiting && self.workload.global_page(c as CoreId, st.pos).0 == page
        })
    }

    /// Executes one tick (steps 1–5). No-op when [`is_done`](Self::is_done).
    pub fn step<O: SimObserver>(&mut self, observer: &mut O) {
        if self.is_done() {
            return;
        }
        let t = self.tick;
        let q = self.config.channels;
        let p = self.cores.len();
        observer.on_tick_start(t);

        // Fault pre-step: this tick's effective channel count and outage
        // transition events, computed afresh every tick (no batching).
        let q_eff = if self.plan_active {
            let q_eff = self.plan.effective_channels(q, t);
            let down = q - q_eff;
            if down > self.last_down {
                observer.on_fault(
                    t,
                    FaultEvent::OutageStart {
                        down: down - self.last_down,
                    },
                );
            } else if down < self.last_down {
                observer.on_fault(
                    t,
                    FaultEvent::OutageEnd {
                        restored: self.last_down - down,
                    },
                );
            }
            self.last_down = down;
            q_eff
        } else {
            q
        };

        // Step 1: remap priorities on schedule.
        if self.arbiter.maybe_remap(t) {
            self.metrics.record_remap();
            observer.on_remap(t);
        }

        // Step 2: scan every core in id order; examine newly issued
        // requests. A request is newly issued when its core is neither
        // waiting on DRAM nor already scheduled for a serve.
        for c in 0..p {
            let st = self.cores[c];
            if st.finished || st.waiting || st.serve_tick.is_some() {
                continue;
            }
            debug_assert_eq!(st.issue_tick, t, "idle core must have just issued");
            let page = self.workload.global_page(c as CoreId, st.pos);
            if self.hbm.contains(page) {
                self.cores[c].was_miss = false;
                self.pin(page.0);
                self.cores[c].serve_tick = Some(t);
            } else {
                self.cores[c].was_miss = true;
                self.metrics.record_miss();
                let covered = self.page_covered(page.0);
                self.cores[c].waiting = true;
                if !covered {
                    self.arbiter.enqueue(Request {
                        core: c as CoreId,
                        page,
                        arrival: t,
                    });
                    observer.on_enqueue(t, c as CoreId, page);
                }
            }
        }

        // Step 3: evict up to q_eff unpinned pages while the queue exceeds
        // the free capacity left after reserving slots for in-flight
        // transfers (an outage shrinks the eviction budget too).
        let mut evicted = 0;
        while evicted < q_eff
            && self.arbiter.len() > self.hbm.free_slots().saturating_sub(self.in_flight.len())
        {
            let pinned = &self.pinned;
            match self
                .hbm
                .evict_one(&mut |page| pinned.iter().any(|&(pp, _)| pp == page.0))
            {
                Some(page) => {
                    evicted += 1;
                    self.metrics.record_eviction();
                    observer.on_evict(t, page);
                }
                None => break, // every resident page is pinned
            }
        }

        // Step 4: scan every core in id order; serve requests scheduled for
        // this tick.
        for c in 0..p {
            let st = self.cores[c];
            if st.serve_tick != Some(t) {
                continue;
            }
            let page = self.workload.global_page(c as CoreId, st.pos);
            debug_assert!(self.hbm.contains(page), "served page must be resident");
            debug_assert!(self.is_pinned(page.0), "served page must be pinned");
            let response = t - st.issue_tick + 1;
            let hit = !st.was_miss;
            self.hbm.touch(page);
            self.unpin(page.0);
            self.metrics.record_serve(c as CoreId, response, hit);
            observer.on_serve(t, c as CoreId, page, response, hit);
            let rt = &mut self.cores[c];
            rt.pos += 1;
            rt.serve_tick = None;
            if rt.pos == self.workload.trace(c as CoreId).len() {
                rt.finished = true;
                self.remaining -= 1;
                self.makespan = self.makespan.max(t + 1);
                self.metrics.record_finish(c as CoreId, t + 1);
                observer.on_core_done(t + 1, c as CoreId);
            } else {
                rt.issue_tick = t + 1;
            }
        }

        // Step 5: start up to q_eff transfers on free *enabled* channels
        // (an outage gates the last q - q_eff channels for new starts),
        // then land completed transfers in start order.
        let free_channels = self.channel_busy[..q_eff]
            .iter()
            .filter(|&&b| b <= t)
            .count();
        let room = self.hbm.free_slots().saturating_sub(self.in_flight.len());
        let n = free_channels.min(room);
        let mut fetch_buf = Vec::new();
        self.arbiter.select(n, &mut fetch_buf);
        for &req in &fetch_buf {
            let latency = if self.plan_active {
                let (latency, extra, failures) =
                    self.plan
                        .transfer_time(self.config.far_latency, t, req.core, req.page.0);
                if extra > 0 {
                    self.metrics.record_degraded_fetch();
                    observer.on_fault(
                        t,
                        FaultEvent::DegradedFetch {
                            core: req.core,
                            page: req.page,
                            extra_latency: extra,
                        },
                    );
                }
                if failures > 0 {
                    self.metrics.record_transient_faults(failures);
                    observer.on_fault(
                        t,
                        FaultEvent::TransientFailure {
                            core: req.core,
                            page: req.page,
                            failures,
                        },
                    );
                }
                latency
            } else {
                self.config.far_latency
            };
            for b in self.channel_busy[..q_eff].iter_mut() {
                if *b <= t {
                    *b = t + latency;
                    break;
                }
            }
            self.in_flight.push((t + latency - 1, req));
        }
        let mut i = 0;
        while i < self.in_flight.len() {
            let (arrival, req) = self.in_flight[i];
            if arrival > t {
                i += 1;
                continue;
            }
            self.in_flight.remove(i);
            self.hbm.insert(req.page);
            // Every core waiting on this page gets a serve next tick; the
            // page is pinned once per waiter so step 3 cannot evict it
            // before all of them are served.
            for c in 0..p {
                let st = self.cores[c];
                if st.waiting && self.workload.global_page(c as CoreId, st.pos) == req.page {
                    self.pin(req.page.0);
                    let rt = &mut self.cores[c];
                    rt.waiting = false;
                    rt.serve_tick = Some(t + 1);
                }
            }
            self.metrics.record_fetch();
            observer.on_fetch(t, req.core, req.page);
        }

        self.metrics.sample_queue_len(self.arbiter.len());
        if self.plan_active && !self.arbiter.is_empty() && q_eff == 0 {
            self.metrics.record_outage_blocked_n(1);
        }
        self.tick = t + 1;
    }

    /// Runs to completion (or `max_ticks`) and reports.
    pub fn run<O: SimObserver>(mut self, observer: &mut O) -> Report {
        while !self.is_done() && self.tick < self.config.max_ticks {
            self.step(observer);
        }
        let truncated = !self.is_done();
        let makespan = if truncated { self.tick } else { self.makespan };
        self.metrics.finish(makespan, truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimBuilder;
    use crate::observer::{NoopObserver, RecordingObserver};

    fn config() -> SimConfig {
        SimConfig {
            hbm_slots: 8,
            channels: 1,
            ..SimConfig::default()
        }
    }

    #[test]
    fn single_core_timeline_matches_paper() {
        // Trace [0, 0, 0]: miss (w=2) then two hits (w=1); makespan 4.
        let w = Workload::from_refs(vec![vec![0, 0, 0]]);
        let mut obs = RecordingObserver::default();
        let r = OracleEngine::new(config(), &w).run(&mut obs);
        assert_eq!(r.served, 3);
        assert_eq!(r.hits, 2);
        assert_eq!(r.misses, 1);
        let responses: Vec<u64> = obs.serves.iter().map(|s| s.3).collect();
        assert_eq!(responses, vec![2, 1, 1]);
        assert_eq!(r.makespan, 4);
    }

    #[test]
    fn two_cores_one_channel_serialize() {
        let w = Workload::from_refs(vec![vec![0], vec![0]]);
        let r = OracleEngine::new(config(), &w).run(&mut NoopObserver);
        assert_eq!(r.served, 2);
        assert_eq!(r.makespan, 3);
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let w = Workload::new();
        let r = OracleEngine::new(config(), &w).run(&mut NoopObserver);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.served, 0);
        assert!(!r.truncated);
    }

    #[test]
    fn shared_pages_coalesce_into_one_fetch() {
        // Both cores request the same global page at t0: one fetch serves
        // both.
        let w = Workload::shared_from_refs(vec![vec![7], vec![7]]);
        let r = OracleEngine::new(config(), &w).run(&mut NoopObserver);
        assert_eq!(r.served, 2);
        assert_eq!(r.misses, 2);
        assert_eq!(r.fetches, 1, "coalesced");
    }

    #[test]
    fn k_less_than_p_makes_progress() {
        let w = Workload::from_refs(vec![vec![0, 1]; 8]);
        let mut cfg = config();
        cfg.hbm_slots = 2;
        cfg.max_ticks = 10_000;
        let r = OracleEngine::new(cfg, &w).run(&mut NoopObserver);
        assert!(!r.truncated, "pinning guard must prevent livelock");
        assert_eq!(r.served, 16);
    }

    #[test]
    fn matches_fast_engine_on_a_simple_cell() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2], vec![3, 4, 3, 4]]);
        let fast = SimBuilder::from_config(config()).run(&w);
        let oracle = OracleEngine::new(config(), &w).run(&mut NoopObserver);
        assert_eq!(fast.makespan, oracle.makespan);
        assert_eq!(fast.hits, oracle.hits);
        assert_eq!(fast.evictions, oracle.evictions);
    }
}
