//! Shared, immutable per-workload derived data: the engine's flattened
//! reference stream and dense page index, computed once and shared across
//! every simulation cell of a sweep.
//!
//! The paper's figures are grids of hundreds of cells over the *same*
//! workload, varying only policy, `k` and `q` (§5). The trace is the
//! invariant — the same insight that lets Mattson's stack algorithm serve
//! all cache sizes from one pass — so everything the engine derives purely
//! from the workload belongs in one immutable structure built once:
//!
//! * the flattened reference stream (`page[i]`, `idx[i]`, with core `c`
//!   owning `[bounds[c], bounds[c+1])`), previously rebuilt inside every
//!   [`crate::Engine`] construction;
//! * the [`PageIndexer`] mapping every referenced page to a dense `u32`.
//!
//! A [`FlatWorkload`] is immutable after construction and shared via
//! `Arc`, so cells running in parallel on many threads read the same
//! memory. Engines built from a shared `FlatWorkload` are **bit-identical**
//! to engines built from the owned [`Workload`]: construction reads the
//! same references in the same canonical order (cores in increasing id,
//! references in trace order), and the per-cell mutable state lives
//! elsewhere (in the engine itself, optionally recycled through
//! [`crate::EngineScratch`]). The sharing differential suite
//! (`crates/core/tests/sharing_differential.rs`) asserts this.

use crate::ids::CoreId;
use crate::page_index::PageIndexer;
use crate::workload::Workload;
use std::ops::Range;
use std::sync::Arc;

/// Immutable pre-indexed form of a [`Workload`]: the flattened reference
/// stream plus the dense page index, ready for any number of engines.
///
/// Build once per workload with [`FlatWorkload::new`], wrap in an `Arc`,
/// and hand clones to every cell of a sweep (see
/// [`crate::Engine::from_flat`] and `SimBuilder::try_build_flat`).
#[derive(Debug)]
pub struct FlatWorkload {
    /// The source workload — a cheap handle (traces are `Arc`-backed), kept
    /// so reference-implementation consumers ([`crate::OracleEngine`],
    /// inspection) can run from the same shared object.
    workload: Workload,
    indexer: Arc<PageIndexer>,
    /// Raw global page id of flattened reference `i`.
    pub(crate) page: Vec<u64>,
    /// Dense index of flattened reference `i` (under `indexer`).
    pub(crate) idx: Vec<u32>,
    /// `p + 1` cumulative offsets: core `c` owns `page[bounds[c]..bounds[c+1]]`.
    bounds: Vec<usize>,
}

impl FlatWorkload {
    /// Flattens `workload` (one scan of every trace, in canonical order:
    /// cores in increasing id, references in trace order) and builds its
    /// [`PageIndexer`].
    pub fn new(workload: &Workload) -> Self {
        let indexer = Arc::new(PageIndexer::for_workload(workload));
        let p = workload.cores();
        let total_refs = workload.total_refs();
        let mut page = Vec::with_capacity(total_refs);
        let mut idx = Vec::with_capacity(total_refs);
        let mut bounds = Vec::with_capacity(p + 1);
        bounds.push(0);
        for c in 0..p {
            let len = workload.trace(c as CoreId).len();
            for i in 0..len {
                let g = workload.global_page(c as CoreId, i);
                page.push(g.0);
                idx.push(indexer.index(g));
            }
            bounds.push(page.len());
        }
        FlatWorkload {
            workload: workload.clone(),
            indexer,
            page,
            idx,
            bounds,
        }
    }

    /// The source workload (a shared handle, not a copy).
    #[inline]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The dense page index over this workload's page universe.
    #[inline]
    pub fn indexer(&self) -> &Arc<PageIndexer> {
        &self.indexer
    }

    /// Number of cores `p`.
    #[inline]
    pub fn cores(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total references across cores (the flattened stream's length).
    #[inline]
    pub fn total_refs(&self) -> usize {
        self.page.len()
    }

    /// Size of the dense page-index space.
    #[inline]
    pub fn total_pages(&self) -> usize {
        self.indexer.total_pages()
    }

    /// The half-open range of flattened positions owned by `core`.
    #[inline]
    pub fn core_range(&self, core: CoreId) -> Range<usize> {
        self.bounds[core as usize]..self.bounds[core as usize + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalPage;

    #[test]
    fn flatten_matches_workload_enumeration() {
        let w = Workload::from_refs(vec![vec![0, 2, 1], vec![], vec![5, 0]]);
        let f = FlatWorkload::new(&w);
        assert_eq!(f.cores(), 3);
        assert_eq!(f.total_refs(), 5);
        assert_eq!(f.core_range(0), 0..3);
        assert_eq!(f.core_range(1), 3..3);
        assert_eq!(f.core_range(2), 3..5);
        for c in 0..3 {
            for (off, i) in f.core_range(c as CoreId).zip(0..) {
                let g = w.global_page(c as CoreId, i);
                assert_eq!(f.page[off], g.0);
                assert_eq!(f.idx[off], f.indexer().index(g));
            }
        }
    }

    #[test]
    fn shared_workload_uses_global_ids() {
        let w = Workload::shared_from_refs(vec![vec![7], vec![7]]);
        let f = FlatWorkload::new(&w);
        assert_eq!(f.page, vec![7, 7]);
        assert_eq!(f.idx[0], f.idx[1], "same global page, same dense index");
        assert_eq!(f.page[0], GlobalPage(7).0);
    }

    #[test]
    fn keeps_a_cheap_workload_handle() {
        let w = Workload::from_refs(vec![(0..1000).collect()]);
        let f = FlatWorkload::new(&w);
        // The handle shares trace storage with the source workload.
        assert!(std::ptr::eq(
            f.workload().trace(0).as_slice().as_ptr(),
            w.trace(0).as_slice().as_ptr()
        ));
    }

    #[test]
    fn empty_workload() {
        let f = FlatWorkload::new(&Workload::new());
        assert_eq!(f.cores(), 0);
        assert_eq!(f.total_refs(), 0);
        assert_eq!(f.total_pages(), 0);
    }
}
