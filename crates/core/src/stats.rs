//! Streaming statistics for response times and queue lengths.
//!
//! Paper-scale runs serve hundreds of millions of requests, so we never
//! store individual response times: [`IntMoments`] keeps exact integer
//! sums in O(1) space (the engine's hot path — a push is two adds and a
//! multiply, no floating point), [`Welford`] keeps count/mean/variance
//! with numerically stable f64 updates for float-valued data, and
//! [`LogHistogram`] keeps power-of-two buckets for percentile estimates.
//! *Inconsistency* (paper §4) is the standard deviation over all response
//! times.

use serde::{Deserialize, Serialize};

/// Exact moment accumulator for integer observations.
///
/// Keeps `Σx` and `Σx²` as 128-bit integers, so the mean and variance are
/// computed from *exact* sums with a single rounding at the end — both
/// cheaper per observation than [`Welford`] (no divisions on the hot path)
/// and at least as accurate for integer data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IntMoments {
    count: u64,
    sum: u128,
    sumsq: u128,
    min: u64,
    max: u64,
}

impl IntMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        IntMoments {
            count: 0,
            sum: 0,
            sumsq: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Folds in one observation.
    #[inline]
    pub fn push(&mut self, x: u64) {
        self.count += 1;
        self.sum += x as u128;
        self.sumsq += (x as u128) * (x as u128);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Folds another accumulator into this one: the result is exactly the
    /// accumulator of the concatenated observation streams (all fields are
    /// integer sums or min/max, so merging loses nothing).
    pub fn merge(&mut self, other: &IntMoments) {
        self.count += other.count;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        // n·Σx² − (Σx)² is exact and non-negative (Cauchy–Schwarz) when it
        // fits in 128 bits, which covers every realistic run; fall back to
        // the float identity only on overflow.
        match (
            (self.count as u128).checked_mul(self.sumsq),
            self.sum.checked_mul(self.sum),
        ) {
            (Some(nsq), Some(sq)) => (nsq - sq) as f64 / (n * n),
            _ => {
                let mean = self.sum as f64 / n;
                (self.sumsq as f64 / n - mean * mean).max(0.0)
            }
        }
    }

    /// Population standard deviation — the paper's *inconsistency* when fed
    /// response times.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Welford's online algorithm for mean and variance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: u64,
    max: u64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Folds in one observation.
    #[inline]
    pub fn push(&mut self, x: u64) {
        self.count += 1;
        let xf = x as f64;
        let delta = xf - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (xf - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation — the paper's *inconsistency* when fed
    /// response times.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Power-of-two bucketed histogram over `u64` observations.
///
/// Bucket `b` counts observations with `floor(log2(x)) == b` (bucket 0
/// counts x ∈ {0, 1}). Gives percentile estimates within a factor of 2,
/// which is all the starvation analyses need.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram (64 buckets, covering all of `u64`).
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 64],
            count: 0,
        }
    }

    fn bucket_of(x: u64) -> usize {
        (64 - x.max(1).leading_zeros() as usize).saturating_sub(1)
    }

    /// Records one observation.
    #[inline]
    pub fn push(&mut self, x: u64) {
        self.buckets[Self::bucket_of(x)] += 1;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Upper bound of the bucket containing the `p`-quantile (p ∈ [0, 1]).
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile_upper_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0)) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if b >= 63 { u64::MAX } else { (2u64 << b) - 1 };
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(bucket_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (if b >= 63 { u64::MAX } else { (2u64 << b) - 1 }, c))
            .collect()
    }
}

/// Mean of a slice (helper for experiment post-processing).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_moments_match_welford() {
        let data: Vec<u64> = (0..10_000).map(|i| (i * 7919) % 1013).collect();
        let mut m = IntMoments::new();
        let mut w = Welford::new();
        for &x in &data {
            m.push(x);
            w.push(x);
        }
        assert_eq!(m.count(), w.count());
        assert!((m.mean() - w.mean()).abs() < 1e-9);
        assert!((m.stddev() - w.stddev()).abs() < 1e-6);
        assert_eq!(m.min(), w.min());
        assert_eq!(m.max(), w.max());
    }

    #[test]
    fn int_moments_empty_and_single() {
        let m = IntMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.stddev(), 0.0);
        assert_eq!(m.min(), None);
        let mut m1 = IntMoments::new();
        m1.push(42);
        assert_eq!(m1.mean(), 42.0);
        assert_eq!(m1.stddev(), 0.0);
        assert_eq!(m1.max(), Some(42));
    }

    #[test]
    fn int_moments_merge_equals_concatenation() {
        let data: Vec<u64> = (0..5_000).map(|i| (i * 31) % 257).collect();
        let mut whole = IntMoments::new();
        let mut a = IntMoments::new();
        let mut b = IntMoments::new();
        for (i, &x) in data.iter().enumerate() {
            whole.push(x);
            if i % 3 == 0 {
                a.push(x)
            } else {
                b.push(x)
            };
        }
        let mut merged = IntMoments::new();
        merged.merge(&a);
        merged.merge(&b);
        merged.merge(&IntMoments::new()); // empty is the identity
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        // Bit-identical, not just close: the sums are the same integers.
        assert_eq!(merged.mean().to_bits(), whole.mean().to_bits());
        assert_eq!(merged.variance().to_bits(), whole.variance().to_bits());
    }

    #[test]
    fn int_moments_exact_on_constant_data() {
        // A constant stream must report exactly zero variance — the exact
        // integer path cannot suffer the cancellation a float Σx² would.
        let mut m = IntMoments::new();
        for _ in 0..1_000_000 {
            m.push(1_000_003);
        }
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.mean(), 1_000_003.0);
    }

    #[test]
    fn welford_matches_naive_on_known_data() {
        let data = [2u64, 4, 4, 4, 5, 5, 7, 9];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12, "known stddev 2");
        assert_eq!(w.min(), Some(2));
        assert_eq!(w.max(), Some(9));
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        assert_eq!(w.min(), None);
        let mut w1 = Welford::new();
        w1.push(42);
        assert_eq!(w1.mean(), 42.0);
        assert_eq!(w1.stddev(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let all: Vec<u64> = (0..1000).map(|i| (i * 7919) % 513).collect();
        let mut seq = Welford::new();
        for &x in &all {
            seq.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &all[..317] {
            a.push(x);
        }
        for &x in &all[317..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.stddev() - seq.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(5);
        let b = Welford::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.push(1);
        }
        h.push(1000);
        // Median is in the x<=1 bucket; the 99.5th percentile is in the
        // bucket containing 1000 (512..1023 -> upper bound 1023).
        assert_eq!(h.quantile_upper_bound(0.5), 1);
        assert_eq!(h.quantile_upper_bound(0.999), 1023);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.push(3);
        b.push(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.nonzero_buckets().len(), 2);
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }
}
