//! Simple makespan lower bounds, used to sanity-check the competitive
//! claims (Theorems 1–3) empirically.
//!
//! No policy — including the offline optimum — can beat these bounds, so
//! `report.makespan / lower_bound(..)` upper-bounds the true competitive
//! ratio of a run. The tests in `tests/competitive.rs` check that Priority's
//! ratio stays small on adversarial inputs while FIFO's grows with `p`,
//! mirroring Theorems 1 and 2.

use crate::workload::Workload;

/// Longest single trace: a core serves at most one reference per tick.
pub fn work_bound(workload: &Workload) -> u64 {
    workload.max_trace_len() as u64
}

/// Every distinct page must cross a far channel at least once, and only `q`
/// can cross per tick: `⌈unique_pages / q⌉` (cold-miss bound). Pages that
/// fit in HBM still must be fetched once.
pub fn channel_bound(workload: &Workload, q: usize) -> u64 {
    (workload.total_unique_pages() as u64).div_ceil(q as u64)
}

/// The max of the valid bounds: the floor no policy can beat.
///
/// Note there is deliberately *no* capacity-pressure term: even when the
/// distinct pages far exceed `k`, an optimal schedule can batch threads so
/// each page is fetched only once during its thread's residency window
/// (exactly what Priority approximates), so `⌈unique/q⌉` is the only
/// traffic every schedule must pay. `k` is accepted for signature
/// stability and future refinements.
pub fn makespan_lower_bound(workload: &Workload, _k: usize, q: usize) -> u64 {
    work_bound(workload)
        .max(channel_bound(workload, q))
        // Any non-empty workload needs at least 2 ticks (fetch + serve).
        .max(if workload.total_refs() > 0 { 2 } else { 0 })
}

/// Serial-channel pessimistic ceiling: no fault-free run can exceed it.
///
/// Assume the worst on every axis at once — every reference misses, every
/// transfer serializes through a single channel (as if `q = 1` and no
/// fetch ever overlaps another), and no serve overlaps any transfer. Each
/// reference then costs at most `far_latency` ticks of channel time plus
/// one serve tick, and one startup tick covers the initial issue:
/// `total_refs · (far_latency + 1) + 1`. The engine is work-conserving —
/// every tick with outstanding requests either serves a core or advances
/// a transfer (both engines' five-step loop issues whenever a channel and
/// an HBM slot are free, and a resident page is served the tick its core
/// reaches it) — so real runs only ever come in under this by
/// overlapping work. The interval test over the conformance grid
/// (`tests/bounds_interval.rs`) pins the claim against both engines.
///
/// `k` and `q` are accepted for signature symmetry with
/// [`makespan_lower_bound`] (and future tightenings that model channel
/// parallelism); the pessimistic bound deliberately ignores both. Fault
/// plans (outages freeze whole ticks) are *not* covered.
pub fn makespan_upper_bound(workload: &Workload, _k: usize, _q: usize, far_latency: u64) -> u64 {
    let refs = workload.total_refs() as u64;
    if refs == 0 {
        return 0;
    }
    refs.saturating_mul(far_latency.saturating_add(1))
        .saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitration::ArbitrationKind;
    use crate::config::SimBuilder;

    #[test]
    fn bounds_on_simple_workload() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2]; 4]);
        assert_eq!(work_bound(&w), 6);
        assert_eq!(channel_bound(&w, 1), 12);
        assert_eq!(channel_bound(&w, 4), 3);
        assert_eq!(makespan_lower_bound(&w, 8, 1), 12);
        assert_eq!(makespan_lower_bound(&w, 8, 4), 6);
    }

    #[test]
    fn priority_on_batched_cycles_approaches_one_fetch_per_page() {
        // The reason there is no capacity term: Priority batches threads so
        // each page is fetched close to once even when unique pages are 4x
        // the HBM. Its makespan lands within a small factor of the bound.
        let trace: Vec<u32> = (0..32).cycle().take(32 * 10).collect();
        let w = Workload::from_refs(vec![trace; 16]);
        let k = 16 * 32 / 4;
        let r = SimBuilder::new()
            .hbm_slots(k)
            .channels(1)
            .arbitration(ArbitrationKind::Priority)
            .run(&w);
        let lb = makespan_lower_bound(&w, k, 1);
        assert!(r.makespan >= lb);
        assert!(
            (r.makespan as f64) < 8.0 * lb as f64,
            "priority {} vs bound {lb}",
            r.makespan
        );
    }

    #[test]
    fn empty_workload_bound_is_zero() {
        assert_eq!(makespan_lower_bound(&Workload::new(), 10, 1), 0);
        assert_eq!(makespan_upper_bound(&Workload::new(), 10, 1, 3), 0);
    }

    #[test]
    fn upper_bound_on_simple_workload() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2]; 4]);
        // 24 refs, far = 1: 24 · 2 + 1.
        assert_eq!(makespan_upper_bound(&w, 8, 1, 1), 49);
        // far = 3: 24 · 4 + 1; the bound ignores k and q by design.
        assert_eq!(makespan_upper_bound(&w, 8, 1, 3), 97);
        assert_eq!(makespan_upper_bound(&w, 64, 4, 3), 97);
    }

    #[test]
    fn upper_bound_never_below_lower_bound() {
        for seed in 0..32u64 {
            let cell = crate::testkit::random_cell(seed);
            let (w, c) = (&cell.workload, cell.config);
            let lb = makespan_lower_bound(w, c.hbm_slots, c.channels);
            let ub = makespan_upper_bound(w, c.hbm_slots, c.channels, c.far_latency);
            assert!(lb <= ub, "lb {lb} > ub {ub} at seed {seed}");
        }
    }

    #[test]
    fn upper_bound_saturates_instead_of_overflowing() {
        let w = Workload::from_refs(vec![vec![0; 8]]);
        assert_eq!(makespan_upper_bound(&w, 1, 1, u64::MAX), u64::MAX);
    }

    #[test]
    fn no_policy_beats_the_bound() {
        let refs: Vec<u32> = (0..64).map(|i| i % 16).collect();
        let w = Workload::from_refs(vec![refs; 6]);
        for k in [4usize, 16, 64, 256] {
            for q in [1usize, 2, 4] {
                let lb = makespan_lower_bound(&w, k, q);
                for kind in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
                    let r = SimBuilder::new()
                        .hbm_slots(k)
                        .channels(q)
                        .arbitration(kind)
                        .run(&w);
                    assert!(
                        r.makespan >= lb,
                        "{kind} makespan {} below lower bound {lb} (k={k}, q={q})",
                        r.makespan
                    );
                }
            }
        }
    }
}
