//! Simple makespan lower bounds, used to sanity-check the competitive
//! claims (Theorems 1–3) empirically.
//!
//! No policy — including the offline optimum — can beat these bounds, so
//! `report.makespan / lower_bound(..)` upper-bounds the true competitive
//! ratio of a run. The tests in `tests/competitive.rs` check that Priority's
//! ratio stays small on adversarial inputs while FIFO's grows with `p`,
//! mirroring Theorems 1 and 2.

use crate::workload::Workload;

/// Longest single trace: a core serves at most one reference per tick.
pub fn work_bound(workload: &Workload) -> u64 {
    workload.max_trace_len() as u64
}

/// Every distinct page must cross a far channel at least once, and only `q`
/// can cross per tick: `⌈unique_pages / q⌉` (cold-miss bound). Pages that
/// fit in HBM still must be fetched once.
pub fn channel_bound(workload: &Workload, q: usize) -> u64 {
    (workload.total_unique_pages() as u64).div_ceil(q as u64)
}

/// The max of the valid bounds: the floor no policy can beat.
///
/// Note there is deliberately *no* capacity-pressure term: even when the
/// distinct pages far exceed `k`, an optimal schedule can batch threads so
/// each page is fetched only once during its thread's residency window
/// (exactly what Priority approximates), so `⌈unique/q⌉` is the only
/// traffic every schedule must pay. `k` is accepted for signature
/// stability and future refinements.
pub fn makespan_lower_bound(workload: &Workload, _k: usize, q: usize) -> u64 {
    work_bound(workload)
        .max(channel_bound(workload, q))
        // Any non-empty workload needs at least 2 ticks (fetch + serve).
        .max(if workload.total_refs() > 0 { 2 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitration::ArbitrationKind;
    use crate::config::SimBuilder;

    #[test]
    fn bounds_on_simple_workload() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2]; 4]);
        assert_eq!(work_bound(&w), 6);
        assert_eq!(channel_bound(&w, 1), 12);
        assert_eq!(channel_bound(&w, 4), 3);
        assert_eq!(makespan_lower_bound(&w, 8, 1), 12);
        assert_eq!(makespan_lower_bound(&w, 8, 4), 6);
    }

    #[test]
    fn priority_on_batched_cycles_approaches_one_fetch_per_page() {
        // The reason there is no capacity term: Priority batches threads so
        // each page is fetched close to once even when unique pages are 4x
        // the HBM. Its makespan lands within a small factor of the bound.
        let trace: Vec<u32> = (0..32).cycle().take(32 * 10).collect();
        let w = Workload::from_refs(vec![trace; 16]);
        let k = 16 * 32 / 4;
        let r = SimBuilder::new()
            .hbm_slots(k)
            .channels(1)
            .arbitration(ArbitrationKind::Priority)
            .run(&w);
        let lb = makespan_lower_bound(&w, k, 1);
        assert!(r.makespan >= lb);
        assert!(
            (r.makespan as f64) < 8.0 * lb as f64,
            "priority {} vs bound {lb}",
            r.makespan
        );
    }

    #[test]
    fn empty_workload_bound_is_zero() {
        assert_eq!(makespan_lower_bound(&Workload::new(), 10, 1), 0);
    }

    #[test]
    fn no_policy_beats_the_bound() {
        let refs: Vec<u32> = (0..64).map(|i| i % 16).collect();
        let w = Workload::from_refs(vec![refs; 6]);
        for k in [4usize, 16, 64, 256] {
            for q in [1usize, 2, 4] {
                let lb = makespan_lower_bound(&w, k, q);
                for kind in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
                    let r = SimBuilder::new()
                        .hbm_slots(k)
                        .channels(q)
                        .arbitration(kind)
                        .run(&w);
                    assert!(
                        r.makespan >= lb,
                        "{kind} makespan {} below lower bound {lb} (k={k}, q={q})",
                        r.makespan
                    );
                }
            }
        }
    }
}
