//! First-come-first-served arbitration (the paper's FIFO).

use super::{ArbitrationPolicy, Request};
use crate::ids::{CoreId, Tick};
use std::collections::VecDeque;

/// FCFS: requests leave the queue in exactly the order they arrived.
///
/// This is the policy Theorem 2 proves Ω(p/ds)-competitive even with d
/// memory and s bandwidth augmentation — the "butter scraped over too much
/// bread" failure mode: HBM gets spread thinly over all threads and nobody
/// retains a working set.
#[derive(Debug, Default, Clone)]
pub struct FcfsArbiter {
    queue: VecDeque<Request>,
}

impl FcfsArbiter {
    /// An empty FCFS queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ArbitrationPolicy for FcfsArbiter {
    fn enqueue(&mut self, req: Request) {
        debug_assert!(
            self.queue.iter().all(|r| r.core != req.core),
            "core {} already queued",
            req.core
        );
        self.queue.push_back(req);
    }

    fn maybe_remap(&mut self, _tick: Tick) -> bool {
        false
    }

    fn next_remap_at_or_after(&self, _tick: Tick) -> Option<Tick> {
        None
    }

    fn select(&mut self, max: usize, out: &mut Vec<Request>) {
        out.clear();
        for _ in 0..max {
            match self.queue.pop_front() {
                Some(r) => out.push(r),
                None => break,
            }
        }
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn priority_of(&self, _core: CoreId) -> Option<u32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalPage;

    fn req(core: CoreId, arrival: Tick) -> Request {
        Request {
            core,
            page: GlobalPage::new(core, 0),
            arrival,
        }
    }

    #[test]
    fn strict_arrival_order() {
        let mut a = FcfsArbiter::new();
        for (c, t) in [(5u32, 0u64), (2, 1), (9, 2)] {
            a.enqueue(req(c, t));
        }
        let mut buf = Vec::new();
        a.select(10, &mut buf);
        assert_eq!(
            buf.iter().map(|r| r.core).collect::<Vec<_>>(),
            vec![5, 2, 9]
        );
    }

    #[test]
    fn partial_selection_preserves_rest() {
        let mut a = FcfsArbiter::new();
        for c in 0..5 {
            a.enqueue(req(c, c as u64));
        }
        let mut buf = Vec::new();
        a.select(2, &mut buf);
        assert_eq!(buf.iter().map(|r| r.core).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(a.len(), 3);
        a.select(2, &mut buf);
        assert_eq!(buf.iter().map(|r| r.core).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn no_priority_notion() {
        let a = FcfsArbiter::new();
        assert_eq!(a.priority_of(0), None);
    }

    #[test]
    fn remap_is_a_noop() {
        let mut a = FcfsArbiter::new();
        assert!(!a.maybe_remap(0));
        assert!(!a.maybe_remap(100));
    }
}
