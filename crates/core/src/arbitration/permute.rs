//! Permutation schedules for priority remapping (paper Definition 1).
//!
//! A permutation `pi` maps thread ids to priorities: `pi[i]` is the priority
//! of thread `i`, with **0 the highest**. The schedules below transform `pi`
//! in place every remap interval.

use crate::rng::Xoshiro256;

/// The identity permutation on `n` threads (static Priority's `pi`).
pub fn identity(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

/// Replaces `pi` with a uniformly random permutation (Dynamic Priority).
pub fn randomize(pi: &mut [u32], rng: &mut Xoshiro256) {
    for (i, v) in pi.iter_mut().enumerate() {
        *v = i as u32;
    }
    rng.shuffle(pi);
}

/// Cycle Priority: `pi'(i) = (pi(i) + 1) mod n`.
///
/// Every thread's priority number increases by one (wrapping), so the thread
/// that was highest becomes lowest and everyone else moves up one rank.
pub fn cycle(pi: &mut [u32]) {
    let n = pi.len() as u32;
    if n == 0 {
        return;
    }
    for v in pi.iter_mut() {
        *v = (*v + 1) % n;
    }
}

/// Cycle-Reverse: `pi'(i) = (pi(i) + n − 1) mod n` — the inverse rotation.
///
/// The paper lists "cycle-reverse" among its sweep variants without a
/// formula; we read it as cycling in the opposite direction, so the thread
/// that was lowest priority becomes highest-but-one step at a time the
/// other way.
pub fn cycle_reverse(pi: &mut [u32]) {
    let n = pi.len() as u32;
    if n == 0 {
        return;
    }
    for v in pi.iter_mut() {
        *v = (*v + n - 1) % n;
    }
}

/// Interleave: apply a perfect riffle shuffle to the priority values.
///
/// Priorities `0..n` are re-dealt so the first half interleaves with the
/// second half: old priority `v < ceil(n/2)` becomes `2v`, old priority
/// `v ≥ ceil(n/2)` becomes `2(v − ceil(n/2)) + 1`. Our reading of the
/// paper's "interleave" sweep variant: repeated application mixes formerly
/// adjacent priorities apart deterministically.
pub fn interleave(pi: &mut [u32]) {
    let n = pi.len() as u32;
    if n == 0 {
        return;
    }
    let half = n.div_ceil(2);
    for v in pi.iter_mut() {
        *v = if *v < half {
            *v * 2
        } else {
            (*v - half) * 2 + 1
        };
    }
}

/// Advances `pi` to the lexicographically next permutation, wrapping from
/// the last permutation back to the identity (C++ `std::next_permutation`
/// semantics). Returns `false` on the wrap.
///
/// §4 suggests that Cycle Priority's starvation on asymmetric work "can
/// likely be mitigated by instead cycling through all permutations"; this
/// schedule does exactly that — every one of the `n!` priority orders is
/// visited before any repeats, with no shared randomness.
pub fn next_permutation(pi: &mut [u32]) -> bool {
    let n = pi.len();
    if n < 2 {
        return false;
    }
    // Find the longest non-increasing suffix.
    let mut i = n - 1;
    while i > 0 && pi[i - 1] >= pi[i] {
        i -= 1;
    }
    if i == 0 {
        pi.reverse(); // last permutation -> identity
        return false;
    }
    // Swap the pivot with the rightmost element exceeding it.
    let mut j = n - 1;
    while pi[j] <= pi[i - 1] {
        j -= 1;
    }
    pi.swap(i - 1, j);
    pi[i..].reverse();
    true
}

/// Checks that `pi` is a permutation of `0..n` (debug validation).
pub fn is_permutation(pi: &[u32]) -> bool {
    let n = pi.len();
    let mut seen = vec![false; n];
    for &v in pi {
        let Some(s) = seen.get_mut(v as usize) else {
            return false;
        };
        if *s {
            return false;
        }
        *s = true;
    }
    true
}

/// Inverts a permutation: `inv[pi[i]] = i`.
///
/// Useful to ask "which thread holds priority r?".
pub fn invert(pi: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; pi.len()];
    for (i, &v) in pi.iter().enumerate() {
        inv[v as usize] = i as u32;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_permutation() {
        let pi = identity(10);
        assert!(is_permutation(&pi));
        assert_eq!(pi[3], 3);
    }

    #[test]
    fn cycle_rotates_and_stays_permutation() {
        let mut pi = identity(5);
        cycle(&mut pi);
        assert_eq!(pi, vec![1, 2, 3, 4, 0]);
        assert!(is_permutation(&pi));
        // n applications returns to identity.
        for _ in 0..4 {
            cycle(&mut pi);
        }
        assert_eq!(pi, identity(5));
    }

    #[test]
    fn cycle_reverse_undoes_cycle() {
        let mut pi = identity(7);
        cycle(&mut pi);
        cycle_reverse(&mut pi);
        assert_eq!(pi, identity(7));
    }

    #[test]
    fn interleave_is_permutation_even_and_odd_n() {
        for n in [0usize, 1, 2, 3, 8, 9, 17, 64] {
            let mut pi = identity(n);
            interleave(&mut pi);
            assert!(is_permutation(&pi), "n={n}");
        }
    }

    #[test]
    fn interleave_small_example() {
        // n=4, half=2: 0->0, 1->2, 2->1, 3->3
        let mut pi = identity(4);
        interleave(&mut pi);
        assert_eq!(pi, vec![0, 2, 1, 3]);
    }

    #[test]
    fn interleave_eventually_cycles_back() {
        let mut pi = identity(8);
        let start = pi.clone();
        let mut steps = 0;
        loop {
            interleave(&mut pi);
            steps += 1;
            assert!(is_permutation(&pi));
            if pi == start || steps > 1000 {
                break;
            }
        }
        assert!(steps <= 1000, "riffle shuffle has small order");
    }

    #[test]
    fn randomize_produces_permutations() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut pi = identity(32);
        for _ in 0..20 {
            randomize(&mut pi, &mut rng);
            assert!(is_permutation(&pi));
        }
    }

    #[test]
    fn invert_roundtrip() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut pi = identity(16);
        randomize(&mut pi, &mut rng);
        let inv = invert(&pi);
        for i in 0..16 {
            assert_eq!(inv[pi[i] as usize], i as u32);
        }
    }

    #[test]
    fn is_permutation_rejects_bad_inputs() {
        assert!(!is_permutation(&[0, 0]));
        assert!(!is_permutation(&[1, 2]));
        assert!(is_permutation(&[]));
        assert!(is_permutation(&[0]));
    }

    #[test]
    fn next_permutation_visits_all_orders() {
        let mut pi = identity(4);
        let mut seen = std::collections::HashSet::new();
        seen.insert(pi.clone());
        for _ in 0..23 {
            assert!(next_permutation(&mut pi));
            assert!(is_permutation(&pi));
            assert!(seen.insert(pi.clone()), "repeated {pi:?}");
        }
        // 24th step wraps back to the identity.
        assert!(!next_permutation(&mut pi));
        assert_eq!(pi, identity(4));
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn next_permutation_degenerate_sizes() {
        let mut empty: Vec<u32> = vec![];
        assert!(!next_permutation(&mut empty));
        let mut one = vec![0u32];
        assert!(!next_permutation(&mut one));
        let mut two = vec![0u32, 1];
        assert!(next_permutation(&mut two));
        assert_eq!(two, vec![1, 0]);
        assert!(!next_permutation(&mut two));
        assert_eq!(two, vec![0, 1]);
    }

    #[test]
    fn empty_schedules_are_noops() {
        let mut pi: Vec<u32> = vec![];
        cycle(&mut pi);
        cycle_reverse(&mut pi);
        interleave(&mut pi);
        assert!(pi.is_empty());
    }
}
