//! Uniform-random arbitration: the `T → 1` limit of Dynamic Priority.

use super::{ArbitrationPolicy, Request};
use crate::ids::{CoreId, Tick};
use crate::rng::Xoshiro256;

/// Serves uniformly random waiting requests each tick.
///
/// §4 of the paper observes that as the remap interval `T → 1`, Dynamic
/// Priority degenerates into random selection, whose expected per-thread
/// waiting time matches FIFO's. We implement it directly so that limit can
/// be tested rather than argued.
#[derive(Debug, Clone)]
pub struct RandomPickArbiter {
    queue: Vec<Request>,
    rng: Xoshiro256,
}

impl RandomPickArbiter {
    /// An empty random arbiter with a fixed seed.
    pub fn new(seed: u64) -> Self {
        RandomPickArbiter {
            queue: Vec::new(),
            rng: Xoshiro256::seed_from_u64(seed ^ 0x7a6e_d01c_5bad_c0de),
        }
    }
}

impl ArbitrationPolicy for RandomPickArbiter {
    fn enqueue(&mut self, req: Request) {
        debug_assert!(self.queue.iter().all(|r| r.core != req.core));
        self.queue.push(req);
    }

    fn maybe_remap(&mut self, _tick: Tick) -> bool {
        false
    }

    fn next_remap_at_or_after(&self, _tick: Tick) -> Option<Tick> {
        None
    }

    fn select(&mut self, max: usize, out: &mut Vec<Request>) {
        out.clear();
        for _ in 0..max {
            if self.queue.is_empty() {
                break;
            }
            let i = self.rng.gen_index(self.queue.len());
            out.push(self.queue.swap_remove(i));
        }
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn priority_of(&self, _core: CoreId) -> Option<u32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalPage;

    fn req(core: CoreId) -> Request {
        Request {
            core,
            page: GlobalPage::new(core, 0),
            arrival: 0,
        }
    }

    #[test]
    fn selection_is_roughly_uniform() {
        // Enqueue cores 0..4, select one, repeat; each core should be picked
        // a similar number of times.
        let mut counts = [0u32; 4];
        let mut a = RandomPickArbiter::new(17);
        let mut buf = Vec::new();
        for _ in 0..4000 {
            for c in 0..4 {
                a.enqueue(req(c));
            }
            a.select(1, &mut buf);
            counts[buf[0].core as usize] += 1;
            // Drain the rest.
            a.select(3, &mut buf);
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?} not uniform");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut a = RandomPickArbiter::new(seed);
            for c in 0..10 {
                a.enqueue(req(c));
            }
            let mut order = Vec::new();
            let mut buf = Vec::new();
            while !a.is_empty() {
                a.select(1, &mut buf);
                order.push(buf[0].core);
            }
            order
        };
        assert_eq!(run(3), run(3));
    }
}
