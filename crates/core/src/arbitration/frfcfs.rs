//! First-ready FCFS: the "adaptive open page" FIFO variant of real DRAM
//! controllers (Rixner et al. 2000; paper §1.1 and §1.3).
//!
//! This is an *extension* beyond the paper's simulated policies: the paper
//! notes Intel's controllers use an FR-FCFS-like scheme and that "much of
//! the literature focuses on optimizations to the basic FCFS policy". We
//! model it at page granularity: a DRAM *row* is a `2^row_shift`-page
//! aligned group, the controller keeps the most recently accessed row per
//! channel "open", and requests to open rows are served before older
//! requests to closed rows (ties by age).

use super::{ArbitrationPolicy, Request};
use crate::ids::{CoreId, Tick};
use std::collections::VecDeque;

/// FR-FCFS arbiter with `2^row_shift` pages per row.
#[derive(Debug, Clone)]
pub struct FrFcfsArbiter {
    queue: VecDeque<Request>,
    /// Most recently opened rows, newest last; bounded by the number of
    /// selections per call (one open row per in-flight channel).
    open_rows: VecDeque<u64>,
    open_cap: usize,
    row_shift: u8,
}

impl FrFcfsArbiter {
    /// A new FR-FCFS queue; rows are `2^row_shift` pages.
    pub fn new(row_shift: u8) -> Self {
        FrFcfsArbiter {
            queue: VecDeque::new(),
            open_rows: VecDeque::new(),
            open_cap: 1,
            row_shift,
        }
    }

    fn row_of(&self, req: &Request) -> u64 {
        req.page.0 >> self.row_shift
    }

    fn note_open(&mut self, row: u64) {
        if let Some(pos) = self.open_rows.iter().position(|&r| r == row) {
            self.open_rows.remove(pos);
        }
        self.open_rows.push_back(row);
        while self.open_rows.len() > self.open_cap {
            self.open_rows.pop_front();
        }
    }
}

impl ArbitrationPolicy for FrFcfsArbiter {
    fn enqueue(&mut self, req: Request) {
        debug_assert!(self.queue.iter().all(|r| r.core != req.core));
        self.queue.push_back(req);
    }

    fn maybe_remap(&mut self, _tick: Tick) -> bool {
        false
    }

    fn next_remap_at_or_after(&self, _tick: Tick) -> Option<Tick> {
        None
    }

    fn select(&mut self, max: usize, out: &mut Vec<Request>) {
        out.clear();
        // One open row tracked per simultaneously-served request.
        self.open_cap = max.max(1);
        for _ in 0..max {
            if self.queue.is_empty() {
                break;
            }
            // First-ready: oldest request whose row is open; else oldest.
            let idx = self
                .queue
                .iter()
                .position(|r| self.open_rows.contains(&(r.page.0 >> self.row_shift)))
                .unwrap_or(0);
            let req = self.queue.remove(idx).expect("index valid");
            let row = self.row_of(&req);
            self.note_open(row);
            out.push(req);
        }
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn priority_of(&self, _core: CoreId) -> Option<u32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalPage;

    fn req_page(core: CoreId, page: u64) -> Request {
        Request {
            core,
            page: GlobalPage(page),
            arrival: core as u64,
        }
    }

    #[test]
    fn falls_back_to_fcfs_with_no_open_row() {
        let mut a = FrFcfsArbiter::new(2);
        a.enqueue(req_page(0, 100));
        a.enqueue(req_page(1, 200));
        let mut buf = Vec::new();
        a.select(1, &mut buf);
        assert_eq!(buf[0].core, 0);
    }

    #[test]
    fn open_row_hit_jumps_the_queue() {
        let mut a = FrFcfsArbiter::new(2); // rows of 4 pages
        let mut buf = Vec::new();
        // Serve page 8 (row 2): row 2 now open.
        a.enqueue(req_page(0, 8));
        a.select(1, &mut buf);
        assert_eq!(buf[0].core, 0);
        // Queue: core 1 -> row 5 (page 20), core 2 -> row 2 (page 9, open).
        a.enqueue(req_page(1, 20));
        a.enqueue(req_page(2, 9));
        a.select(1, &mut buf);
        assert_eq!(buf[0].core, 2, "row-hit request served first");
        a.select(1, &mut buf);
        assert_eq!(buf[0].core, 1);
    }

    #[test]
    fn row_shift_zero_means_page_granularity_rows() {
        let mut a = FrFcfsArbiter::new(0);
        let mut buf = Vec::new();
        a.enqueue(req_page(0, 7));
        a.select(1, &mut buf);
        a.enqueue(req_page(1, 8));
        a.enqueue(req_page(2, 7)); // exact same page id can't recur per
                                   // model, but same row id can across cores
        a.select(1, &mut buf);
        assert_eq!(buf[0].core, 2);
    }

    #[test]
    fn drains_completely() {
        let mut a = FrFcfsArbiter::new(3);
        for c in 0..10 {
            a.enqueue(req_page(c, (c as u64) * 3));
        }
        let mut buf = Vec::new();
        let mut total = 0;
        while !a.is_empty() {
            a.select(4, &mut buf);
            total += buf.len();
        }
        assert_eq!(total, 10);
    }
}
