//! Far-channel arbitration policies (paper §1.1, policy 2 — "the problem").
//!
//! When more than `q` outstanding requests need the DRAM channels, the
//! arbitration policy decides which `q` are served this tick. The paper
//! studies:
//!
//! * **FIFO / FCFS** ([`FcfsArbiter`]): serve in arrival order. Natural,
//!   ubiquitous in real DRAM controllers, and provably Ω(p)-competitive in
//!   the worst case (Theorem 2).
//! * **Priority** ([`PriorityArbiter`] with [`RemapStrategy::None`]): a
//!   static pecking order among threads; O(1)-competitive (Theorem 1) and
//!   O(q)-competitive with q channels (Theorem 3), but unfair — low-priority
//!   threads can starve.
//! * **Dynamic Priority** ([`RemapStrategy::Random`]): randomly re-permute
//!   priorities every `T` ticks. Keeps the competitive bound (for `T ≥ k`)
//!   while slashing response-time variance — the paper's headline scheme.
//! * **Cycle Priority** ([`RemapStrategy::Cycle`]): deterministically rotate
//!   priorities every `T` ticks; hardware-friendlier than shared randomness.
//! * **Cycle-Reverse** and **Interleave** ([`RemapStrategy::CycleReverse`],
//!   [`RemapStrategy::Interleave`]): the other deterministic permutation
//!   schedules from the paper's parameter sweep (§1.2). The paper does not
//!   spell out their permutations; we document our reading on each variant.
//! * **Random pick** ([`RandomPickArbiter`]): serve uniformly random waiting
//!   requests — the `T → 1` limit of Dynamic Priority (§4).
//! * **FR-FCFS** ([`FrFcfsArbiter`]): first-ready FCFS, the "adaptive open
//!   page" FIFO variant real controllers use (§1.1); an extension beyond the
//!   paper's simulations, included because the paper names it as the
//!   incumbent.

mod fcfs;
mod frfcfs;
pub mod permute;
mod priority;
mod random_pick;

pub use fcfs::FcfsArbiter;
pub use frfcfs::FrFcfsArbiter;
pub use priority::{PriorityArbiter, RemapStrategy};
pub use random_pick::RandomPickArbiter;

use crate::ids::{CoreId, GlobalPage, Tick};
use serde::{Deserialize, Serialize};

/// One outstanding block request waiting for a far channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The requesting core (each core has at most one outstanding request).
    pub core: CoreId,
    /// The page to fetch from DRAM.
    pub page: GlobalPage,
    /// Tick at which the request entered the queue.
    pub arrival: Tick,
}

/// Which far-channel arbitration policy to run, with its parameters.
///
/// `period` values are in ticks; the paper expresses them as multiples of
/// the HBM size `k` (e.g. `T = 10k`), which `SimBuilder::remap_period_times_k`
/// computes for you.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArbitrationKind {
    /// First-come-first-served (the paper's FIFO).
    Fifo,
    /// Static priority: thread id = priority, fixed forever.
    Priority,
    /// Randomly permute priorities every `period` ticks.
    DynamicPriority {
        /// Remap interval `T` in ticks.
        period: u64,
    },
    /// Rotate priorities by one every `period` ticks.
    CyclePriority {
        /// Remap interval `T` in ticks.
        period: u64,
    },
    /// Rotate priorities backwards by one every `period` ticks.
    CycleReversePriority {
        /// Remap interval `T` in ticks.
        period: u64,
    },
    /// Apply a perfect-shuffle (riffle) permutation every `period` ticks.
    InterleavePriority {
        /// Remap interval `T` in ticks.
        period: u64,
    },
    /// Step to the lexicographically next permutation every `period`
    /// ticks, visiting all `p!` priority orders before repeating (§4's
    /// suggested deterministic fix for asymmetric-work starvation).
    SweepPriority {
        /// Remap interval `T` in ticks.
        period: u64,
    },
    /// Serve uniformly random waiting requests each tick.
    RandomPick,
    /// First-ready FCFS: prefer requests that hit a currently open DRAM row,
    /// break ties by age. `row_shift` sets the row size to `2^row_shift`
    /// pages.
    FrFcfs {
        /// log2 of pages per DRAM row.
        row_shift: u8,
    },
}

impl ArbitrationKind {
    /// Instantiates the arbiter for `p` cores. `seed` feeds the randomized
    /// policies; deterministic policies ignore it.
    pub fn build(self, p: usize, seed: u64) -> Box<dyn ArbitrationPolicy> {
        match self {
            ArbitrationKind::Fifo => Box::new(FcfsArbiter::new()),
            ArbitrationKind::Priority => {
                Box::new(PriorityArbiter::new(p, RemapStrategy::None, 0, seed))
            }
            ArbitrationKind::DynamicPriority { period } => {
                Box::new(PriorityArbiter::new(p, RemapStrategy::Random, period, seed))
            }
            ArbitrationKind::CyclePriority { period } => {
                Box::new(PriorityArbiter::new(p, RemapStrategy::Cycle, period, seed))
            }
            ArbitrationKind::CycleReversePriority { period } => Box::new(PriorityArbiter::new(
                p,
                RemapStrategy::CycleReverse,
                period,
                seed,
            )),
            ArbitrationKind::InterleavePriority { period } => Box::new(PriorityArbiter::new(
                p,
                RemapStrategy::Interleave,
                period,
                seed,
            )),
            ArbitrationKind::SweepPriority { period } => Box::new(PriorityArbiter::new(
                p,
                RemapStrategy::ExhaustiveSweep,
                period,
                seed,
            )),
            ArbitrationKind::RandomPick => Box::new(RandomPickArbiter::new(seed)),
            ArbitrationKind::FrFcfs { row_shift } => Box::new(FrFcfsArbiter::new(row_shift)),
        }
    }

    /// Instantiates the arbiter behind the engine's enum dispatch: the two
    /// policy families every paper experiment exercises (FIFO and the
    /// priority family) are dispatched statically so their queue operations
    /// inline into the tick loop; the rest fall back to the trait object.
    /// Behavior is identical to [`build`](Self::build) in every case.
    pub fn build_dispatch(self, p: usize, seed: u64) -> Arbiter {
        match self {
            ArbitrationKind::Fifo => Arbiter::Fcfs(FcfsArbiter::new()),
            ArbitrationKind::Priority
            | ArbitrationKind::DynamicPriority { .. }
            | ArbitrationKind::CyclePriority { .. }
            | ArbitrationKind::CycleReversePriority { .. }
            | ArbitrationKind::InterleavePriority { .. }
            | ArbitrationKind::SweepPriority { .. } => {
                let (strategy, period) = match self {
                    ArbitrationKind::Priority => (RemapStrategy::None, 0),
                    ArbitrationKind::DynamicPriority { period } => (RemapStrategy::Random, period),
                    ArbitrationKind::CyclePriority { period } => (RemapStrategy::Cycle, period),
                    ArbitrationKind::CycleReversePriority { period } => {
                        (RemapStrategy::CycleReverse, period)
                    }
                    ArbitrationKind::InterleavePriority { period } => {
                        (RemapStrategy::Interleave, period)
                    }
                    ArbitrationKind::SweepPriority { period } => {
                        (RemapStrategy::ExhaustiveSweep, period)
                    }
                    _ => unreachable!(),
                };
                Arbiter::Priority(PriorityArbiter::new(p, strategy, period, seed))
            }
            other => Arbiter::Other(other.build(p, seed)),
        }
    }

    /// The remap period, if this kind periodically re-permutes priorities.
    pub fn period(&self) -> Option<u64> {
        match self {
            ArbitrationKind::DynamicPriority { period }
            | ArbitrationKind::CyclePriority { period }
            | ArbitrationKind::CycleReversePriority { period }
            | ArbitrationKind::InterleavePriority { period }
            | ArbitrationKind::SweepPriority { period } => Some(*period),
            _ => None,
        }
    }

    /// Short stable name for tables and CSV output.
    pub fn label(&self) -> String {
        match self {
            ArbitrationKind::Fifo => "FIFO".into(),
            ArbitrationKind::Priority => "Priority".into(),
            ArbitrationKind::DynamicPriority { period } => format!("Dynamic(T={period})"),
            ArbitrationKind::CyclePriority { period } => format!("Cycle(T={period})"),
            ArbitrationKind::CycleReversePriority { period } => format!("CycleRev(T={period})"),
            ArbitrationKind::InterleavePriority { period } => format!("Interleave(T={period})"),
            ArbitrationKind::SweepPriority { period } => format!("Sweep(T={period})"),
            ArbitrationKind::RandomPick => "RandomPick".into(),
            ArbitrationKind::FrFcfs { row_shift } => format!("FR-FCFS(row=2^{row_shift})"),
        }
    }
}

impl std::fmt::Display for ArbitrationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Interface every far-channel arbiter implements.
///
/// The engine calls `maybe_remap` at step 1 of each tick, `enqueue` at step
/// 2 for each newly missing request, and `select` at step 5 to pop up to
/// `q` requests for the far channels.
pub trait ArbitrationPolicy: Send {
    /// Adds a request to the queue. Each core has at most one outstanding
    /// request, so `req.core` is not currently queued.
    fn enqueue(&mut self, req: Request);

    /// Step 1 housekeeping. Returns `true` if priorities were re-permuted
    /// this tick (for the remap counter).
    fn maybe_remap(&mut self, tick: Tick) -> bool;

    /// The earliest tick `u ≥ tick` at which [`maybe_remap`](Self::maybe_remap)
    /// may return `true`, or `None` if it never will again.
    ///
    /// The engine uses this to skip `maybe_remap` calls on quiet ticks and
    /// to fast-forward through inert spans. Returning `Some(tick)` ("maybe
    /// right now") is always a safe conservative answer, and the default
    /// does exactly that — at the cost of disabling the fast-forward
    /// optimization. An override must be *exact* about when remaps fire, or
    /// the engine's trajectory diverges from the canonical one.
    fn next_remap_at_or_after(&self, tick: Tick) -> Option<Tick> {
        Some(tick)
    }

    /// Pops up to `max` requests, best-first per the policy, into `out`
    /// (which is cleared first).
    ///
    /// Calling `select` with `max == 0` or an empty queue must be a pure
    /// no-op apart from clearing `out` (no RNG draws, no observable state
    /// change): the engine skips such calls on its fast path, so any other
    /// behavior would make the optimized trajectory diverge.
    fn select(&mut self, max: usize, out: &mut Vec<Request>);

    /// Number of waiting requests.
    fn len(&self) -> usize;

    /// True when no requests wait.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current priority of `core` (0 = highest), if the policy has a notion
    /// of priority.
    fn priority_of(&self, core: CoreId) -> Option<u32>;
}

/// Statically-dispatched arbiter handle (see
/// [`ArbitrationKind::build_dispatch`]). Each method forwards to the same
/// [`ArbitrationPolicy`] implementation the boxed form would call, so the
/// trajectory is representation-independent; the enum only removes the
/// virtual-call indirection from the engine's per-tick loop.
pub enum Arbiter {
    /// Inlined FIFO.
    Fcfs(FcfsArbiter),
    /// Inlined priority family (static/dynamic/cycle/…).
    Priority(PriorityArbiter),
    /// Any other policy, behind the trait object.
    Other(Box<dyn ArbitrationPolicy>),
}

macro_rules! arbiter_forward {
    ($self:ident, $a:ident => $e:expr) => {
        match $self {
            Arbiter::Fcfs($a) => $e,
            Arbiter::Priority($a) => $e,
            Arbiter::Other($a) => $e,
        }
    };
}

impl Arbiter {
    /// See [`ArbitrationPolicy::enqueue`].
    #[inline]
    pub fn enqueue(&mut self, req: Request) {
        arbiter_forward!(self, a => a.enqueue(req))
    }

    /// See [`ArbitrationPolicy::maybe_remap`].
    #[inline]
    pub fn maybe_remap(&mut self, tick: Tick) -> bool {
        arbiter_forward!(self, a => a.maybe_remap(tick))
    }

    /// See [`ArbitrationPolicy::next_remap_at_or_after`].
    #[inline]
    pub fn next_remap_at_or_after(&self, tick: Tick) -> Option<Tick> {
        arbiter_forward!(self, a => a.next_remap_at_or_after(tick))
    }

    /// See [`ArbitrationPolicy::select`].
    #[inline]
    pub fn select(&mut self, max: usize, out: &mut Vec<Request>) {
        arbiter_forward!(self, a => a.select(max, out))
    }

    /// See [`ArbitrationPolicy::len`].
    #[inline]
    pub fn len(&self) -> usize {
        arbiter_forward!(self, a => a.len())
    }

    /// See [`ArbitrationPolicy::is_empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`ArbitrationPolicy::priority_of`].
    #[inline]
    pub fn priority_of(&self, core: CoreId) -> Option<u32> {
        arbiter_forward!(self, a => a.priority_of(core))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(core: CoreId, arrival: Tick) -> Request {
        Request {
            core,
            page: GlobalPage::new(core, 0),
            arrival,
        }
    }

    /// Every policy must return exactly the queued requests, never invent or
    /// lose one.
    #[test]
    fn conservation_across_all_kinds() {
        let kinds = [
            ArbitrationKind::Fifo,
            ArbitrationKind::Priority,
            ArbitrationKind::DynamicPriority { period: 3 },
            ArbitrationKind::CyclePriority { period: 3 },
            ArbitrationKind::CycleReversePriority { period: 3 },
            ArbitrationKind::InterleavePriority { period: 3 },
            ArbitrationKind::SweepPriority { period: 3 },
            ArbitrationKind::RandomPick,
            ArbitrationKind::FrFcfs { row_shift: 2 },
        ];
        for kind in kinds {
            let mut a = kind.build(16, 11);
            for c in 0..16 {
                a.enqueue(req(c, c as u64));
            }
            assert_eq!(a.len(), 16);
            let mut got = Vec::new();
            let mut buf = Vec::new();
            for t in 0..8u64 {
                a.maybe_remap(t);
                a.select(3, &mut buf);
                got.extend(buf.iter().map(|r| r.core));
            }
            assert!(a.is_empty(), "{kind}: queue drained");
            got.sort_unstable();
            assert_eq!(got, (0..16).collect::<Vec<_>>(), "{kind}: conservation");
        }
    }

    #[test]
    fn select_respects_max() {
        let mut a = ArbitrationKind::Fifo.build(4, 0);
        for c in 0..4 {
            a.enqueue(req(c, 0));
        }
        let mut buf = Vec::new();
        a.select(0, &mut buf);
        assert!(buf.is_empty());
        a.select(2, &mut buf);
        assert_eq!(buf.len(), 2);
        a.select(10, &mut buf);
        assert_eq!(buf.len(), 2, "only 2 remained");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArbitrationKind::Fifo.label(), "FIFO");
        assert_eq!(
            ArbitrationKind::DynamicPriority { period: 100 }.label(),
            "Dynamic(T=100)"
        );
        assert_eq!(
            ArbitrationKind::FrFcfs { row_shift: 3 }.label(),
            "FR-FCFS(row=2^3)"
        );
    }

    #[test]
    fn period_accessor() {
        assert_eq!(ArbitrationKind::Fifo.period(), None);
        assert_eq!(
            ArbitrationKind::CyclePriority { period: 7 }.period(),
            Some(7)
        );
    }
}
