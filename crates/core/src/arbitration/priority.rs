//! The priority family: static Priority, Dynamic Priority, Cycle Priority,
//! Cycle-Reverse, and Interleave (paper Definition 1).
//!
//! All five share one arbiter: a priority assignment `pi` (thread → rank,
//! 0 highest) plus a remap schedule applied every `T` ticks. Waiting
//! requests are indexed by a bitset over ranks: since `pi` is a
//! permutation, ranks are unique, so "lowest `(rank, core)`" is just the
//! lowest set bit — selection of the `q` best is a `⌈p/64⌉`-word scan with
//! no allocation or pointer chasing, and a remap rebuild is O(p). This is
//! the engine's hot select path for every priority-family policy.

use super::permute;
use super::{ArbitrationPolicy, Request};
use crate::ids::{CoreId, Tick};
use crate::rng::Xoshiro256;

/// How (and whether) the priority permutation changes at each remap tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapStrategy {
    /// Never remap: the static Priority policy of Das et al.
    None,
    /// Fresh uniformly random permutation: Dynamic Priority.
    Random,
    /// `pi'(i) = (pi(i) + 1) mod p`: Cycle Priority.
    Cycle,
    /// `pi'(i) = (pi(i) + p − 1) mod p`: Cycle-Reverse.
    CycleReverse,
    /// Perfect riffle of the priority values: Interleave.
    Interleave,
    /// Lexicographic sweep through all `p!` permutations — §4's suggested
    /// fix for Cycle Priority's asymmetric-work starvation, still with no
    /// shared randomness.
    ExhaustiveSweep,
}

/// Priority-based far-channel arbiter with an optional remap schedule.
pub struct PriorityArbiter {
    /// `pi[i]` = current priority rank of thread `i` (0 = highest).
    pi: Vec<u32>,
    /// `inv[r]` = the thread currently holding rank `r` (inverse of `pi`).
    inv: Vec<CoreId>,
    /// Bit `r` set ⇔ the thread with rank `r` has a waiting request.
    waiting_bits: Vec<u64>,
    /// Number of set bits in `waiting_bits`.
    waiting_count: usize,
    /// Request payload per core (each core queues at most one request).
    pending: Vec<Option<Request>>,
    strategy: RemapStrategy,
    /// Remap interval `T` in ticks; 0 disables remapping regardless of
    /// strategy.
    period: u64,
    rng: Xoshiro256,
    remaps: u64,
}

impl PriorityArbiter {
    /// A priority arbiter over `p` threads. `pi` starts as the identity
    /// permutation (thread 0 highest), exactly the paper's static Priority;
    /// `strategy`/`period` layer the remap schedule on top.
    pub fn new(p: usize, strategy: RemapStrategy, period: u64, seed: u64) -> Self {
        PriorityArbiter {
            pi: permute::identity(p),
            inv: (0..p as CoreId).collect(),
            waiting_bits: vec![0; p.div_ceil(64)],
            waiting_count: 0,
            pending: vec![None; p],
            strategy,
            period,
            rng: Xoshiro256::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            remaps: 0,
        }
    }

    /// Number of remaps performed so far.
    pub fn remap_count(&self) -> u64 {
        self.remaps
    }

    /// The current permutation (thread → rank), for observability.
    pub fn permutation(&self) -> &[u32] {
        &self.pi
    }

    fn apply_remap(&mut self) {
        match self.strategy {
            RemapStrategy::None => return,
            RemapStrategy::Random => permute::randomize(&mut self.pi, &mut self.rng),
            RemapStrategy::Cycle => permute::cycle(&mut self.pi),
            RemapStrategy::CycleReverse => permute::cycle_reverse(&mut self.pi),
            RemapStrategy::Interleave => permute::interleave(&mut self.pi),
            RemapStrategy::ExhaustiveSweep => {
                permute::next_permutation(&mut self.pi);
            }
        }
        debug_assert!(permute::is_permutation(&self.pi));
        // Rebuild the inverse and the waiting index under the new ranks.
        self.waiting_bits.fill(0);
        for (c, &rank) in self.pi.iter().enumerate() {
            self.inv[rank as usize] = c as CoreId;
            if self.pending[c].is_some() {
                self.waiting_bits[rank as usize / 64] |= 1u64 << (rank % 64);
            }
        }
        self.remaps += 1;
    }
}

impl ArbitrationPolicy for PriorityArbiter {
    fn enqueue(&mut self, req: Request) {
        let c = req.core as usize;
        debug_assert!(
            self.pending[c].is_none(),
            "core {} already queued",
            req.core
        );
        self.pending[c] = Some(req);
        let rank = self.pi[c] as usize;
        self.waiting_bits[rank / 64] |= 1u64 << (rank % 64);
        self.waiting_count += 1;
    }

    fn maybe_remap(&mut self, tick: Tick) -> bool {
        if self.strategy == RemapStrategy::None
            || self.period == 0
            || !tick.is_multiple_of(self.period)
        {
            return false;
        }
        self.apply_remap();
        true
    }

    fn next_remap_at_or_after(&self, tick: Tick) -> Option<Tick> {
        if self.strategy == RemapStrategy::None || self.period == 0 {
            return None;
        }
        // The next multiple of `period` at or after `tick` — exactly the
        // ticks `maybe_remap` fires on (including tick 0).
        Some(tick.div_ceil(self.period).saturating_mul(self.period))
    }

    fn select(&mut self, max: usize, out: &mut Vec<Request>) {
        out.clear();
        while out.len() < max && self.waiting_count > 0 {
            // Lowest set bit across the words = best (lowest) waiting rank.
            let (w, word) = self
                .waiting_bits
                .iter()
                .enumerate()
                .find(|(_, &word)| word != 0)
                .map(|(w, &word)| (w, word))
                .expect("waiting_count > 0 implies a set bit");
            let rank = w * 64 + word.trailing_zeros() as usize;
            self.waiting_bits[w] = word & (word - 1);
            self.waiting_count -= 1;
            let core = self.inv[rank];
            let req = self.pending[core as usize]
                .take()
                .expect("waiting bit has pending request");
            out.push(req);
        }
    }

    fn len(&self) -> usize {
        self.waiting_count
    }

    fn priority_of(&self, core: CoreId) -> Option<u32> {
        self.pi.get(core as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalPage;

    fn req(core: CoreId) -> Request {
        Request {
            core,
            page: GlobalPage::new(core, 0),
            arrival: 0,
        }
    }

    fn drain_order(a: &mut PriorityArbiter) -> Vec<CoreId> {
        let mut buf = Vec::new();
        a.select(usize::MAX, &mut buf);
        buf.iter().map(|r| r.core).collect()
    }

    #[test]
    fn static_priority_serves_lowest_thread_id_first() {
        let mut a = PriorityArbiter::new(8, RemapStrategy::None, 0, 0);
        for c in [6u32, 1, 4, 0] {
            a.enqueue(req(c));
        }
        assert_eq!(drain_order(&mut a), vec![0, 1, 4, 6]);
    }

    #[test]
    fn high_priority_jumps_queue_regardless_of_arrival() {
        let mut a = PriorityArbiter::new(4, RemapStrategy::None, 0, 0);
        a.enqueue(req(3)); // arrives first
        a.enqueue(req(0)); // arrives later, but rank 0
        let mut buf = Vec::new();
        a.select(1, &mut buf);
        assert_eq!(buf[0].core, 0);
    }

    #[test]
    fn static_never_remaps() {
        let mut a = PriorityArbiter::new(4, RemapStrategy::None, 5, 0);
        for t in 0..100 {
            assert!(!a.maybe_remap(t));
        }
        assert_eq!(a.remap_count(), 0);
    }

    #[test]
    fn cycle_demotes_the_leader() {
        let mut a = PriorityArbiter::new(3, RemapStrategy::Cycle, 10, 0);
        assert_eq!(a.priority_of(0), Some(0));
        assert!(a.maybe_remap(10));
        // pi(i) = i+1 mod 3: thread 2 now has rank 0.
        assert_eq!(a.priority_of(2), Some(0));
        assert_eq!(a.priority_of(0), Some(1));
        a.enqueue(req(0));
        a.enqueue(req(2));
        assert_eq!(drain_order(&mut a), vec![2, 0]);
    }

    #[test]
    fn remap_only_on_multiples_of_period() {
        let mut a = PriorityArbiter::new(4, RemapStrategy::Cycle, 7, 0);
        let fired: Vec<u64> = (0..22).filter(|&t| a.maybe_remap(t)).collect();
        assert_eq!(fired, vec![0, 7, 14, 21]);
    }

    #[test]
    fn remap_reorders_waiting_requests() {
        let mut a = PriorityArbiter::new(3, RemapStrategy::Cycle, 1, 0);
        a.enqueue(req(0));
        a.enqueue(req(1));
        a.enqueue(req(2));
        // After one cycle, ranks are 1,2,0 → thread 2 first.
        a.maybe_remap(1);
        assert_eq!(drain_order(&mut a), vec![2, 0, 1]);
    }

    #[test]
    fn dynamic_remap_is_seed_deterministic() {
        let run = |seed| {
            let mut a = PriorityArbiter::new(16, RemapStrategy::Random, 1, seed);
            a.maybe_remap(1);
            a.permutation().to_vec()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn dynamic_remap_counts() {
        let mut a = PriorityArbiter::new(8, RemapStrategy::Random, 4, 1);
        for t in 0..16 {
            a.maybe_remap(t);
        }
        assert_eq!(a.remap_count(), 4); // t = 0, 4, 8, 12
    }

    #[test]
    fn period_zero_disables_remap() {
        let mut a = PriorityArbiter::new(8, RemapStrategy::Random, 0, 1);
        for t in 0..10 {
            assert!(!a.maybe_remap(t));
        }
    }

    #[test]
    fn pending_slot_freed_after_select() {
        let mut a = PriorityArbiter::new(2, RemapStrategy::None, 0, 0);
        a.enqueue(req(1));
        let mut buf = Vec::new();
        a.select(1, &mut buf);
        assert!(a.is_empty());
        // Core 1 can queue again.
        a.enqueue(req(1));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn interleave_strategy_changes_ranks() {
        let mut a = PriorityArbiter::new(8, RemapStrategy::Interleave, 1, 0);
        a.maybe_remap(1);
        // half=4: thread 1 (rank 1) -> rank 2; thread 4 (rank 4) -> rank 1.
        assert_eq!(a.priority_of(1), Some(2));
        assert_eq!(a.priority_of(4), Some(1));
    }

    #[test]
    fn cycle_reverse_promotes_the_tail() {
        let mut a = PriorityArbiter::new(4, RemapStrategy::CycleReverse, 1, 0);
        a.maybe_remap(1);
        // pi(i) = i-1 mod 4: thread 1 now rank 0.
        assert_eq!(a.priority_of(1), Some(0));
        assert_eq!(a.priority_of(0), Some(3));
    }
}
