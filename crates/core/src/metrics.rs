//! Metrics collection and the simulation [`Report`].
//!
//! The paper's evaluation uses three headline numbers — **makespan** (§2),
//! **inconsistency** = stddev of response times (§4), and **average response
//! time** (Table 1) — plus hit/miss counts to explain them. The collector
//! streams everything (no per-request storage) so paper-scale runs stay in
//! O(p) memory.

use crate::ids::{CoreId, Tick};
use crate::stats::{IntMoments, LogHistogram};
use serde::{Deserialize, Serialize};

/// Per-core outcome summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreReport {
    /// Requests served to this core.
    pub served: u64,
    /// HBM hits among them.
    pub hits: u64,
    /// Tick at which this core finished (its makespan); 0 for an empty
    /// trace.
    pub finish_tick: Tick,
    /// Mean response time over this core's requests.
    pub mean_response: f64,
    /// Max response time this core ever saw — the starvation indicator.
    pub max_response: u64,
}

/// Response-time summary across all requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseSummary {
    /// Served request count.
    pub count: u64,
    /// Average response time (Table 1's right column).
    pub mean: f64,
    /// Standard deviation — the paper's **inconsistency** (Table 1's left
    /// column, Figure 5's x-axis).
    pub inconsistency: f64,
    /// Fastest response (1 for any hit).
    pub min: u64,
    /// Slowest response.
    pub max: u64,
    /// Upper bound on the 99th-percentile response time (log2 buckets).
    pub p99_upper_bound: u64,
}

/// Aggregate fault-injection activity during a run (all zero for runs
/// without an active [`crate::FaultPlan`]).
///
/// Counted identically — tick for tick, event for event — by both engines;
/// the fault differential suite compares these fields exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Ticks at whose end requests were queued while an outage held the
    /// effective channel count at zero (the machine was fully blocked).
    pub outage_blocked_ticks: u64,
    /// Fetches started inside a degradation window (with extra latency).
    pub degraded_fetches: u64,
    /// Failed transfer attempts (each retry that occupied a channel).
    pub transient_faults: u64,
}

impl FaultCounters {
    /// True when no fault ever fired.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounters::default()
    }
}

/// Everything a simulation run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Ticks until the last core completed (the optimization objective).
    pub makespan: Tick,
    /// Total requests served (= total trace references).
    pub served: u64,
    /// HBM hits.
    pub hits: u64,
    /// HBM misses (per-core requests that waited on a far channel).
    pub misses: u64,
    /// Far-channel block fetches. Equals `misses` for disjoint workloads;
    /// smaller when shared workloads coalesce concurrent requests.
    pub fetches: u64,
    /// Pages evicted from HBM.
    pub evictions: u64,
    /// Priority remap events.
    pub remaps: u64,
    /// Fraction of served requests that hit.
    pub hit_rate: f64,
    /// Response-time summary (the fairness metrics).
    pub response: ResponseSummary,
    /// Mean DRAM-queue length sampled each tick.
    pub mean_queue_len: f64,
    /// Max DRAM-queue length ever.
    pub max_queue_len: u64,
    /// Per-core summaries.
    pub per_core: Vec<CoreReport>,
    /// Injected-fault activity (zero when no fault plan was active).
    pub faults: FaultCounters,
    /// True if the run hit `max_ticks` before all cores finished.
    pub truncated: bool,
}

impl Report {
    /// Stddev of per-core finish ticks — how unevenly threads completed.
    pub fn finish_spread(&self) -> f64 {
        let ticks: Vec<f64> = self.per_core.iter().map(|c| c.finish_tick as f64).collect();
        crate::stats::stddev(&ticks)
    }

    /// Max over cores of their max response time (worst starvation).
    pub fn worst_response(&self) -> u64 {
        self.per_core
            .iter()
            .map(|c| c.max_response)
            .max()
            .unwrap_or(0)
    }
}

/// Streaming collector the engine feeds during a run.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    histogram: LogHistogram,
    per_core: Vec<IntMoments>,
    core_hits: Vec<u64>,
    finish: Vec<Tick>,
    hits: u64,
    misses: u64,
    fetches: u64,
    evictions: u64,
    remaps: u64,
    queue_len_sum: u128,
    queue_len_samples: u64,
    max_queue_len: u64,
    faults: FaultCounters,
}

impl MetricsCollector {
    /// A collector for `p` cores.
    pub fn new(p: usize) -> Self {
        MetricsCollector {
            histogram: LogHistogram::new(),
            per_core: vec![IntMoments::new(); p],
            core_hits: vec![0; p],
            finish: vec![0; p],
            hits: 0,
            misses: 0,
            fetches: 0,
            evictions: 0,
            remaps: 0,
            queue_len_sum: 0,
            queue_len_samples: 0,
            max_queue_len: 0,
            faults: FaultCounters::default(),
        }
    }

    /// Records a served request with its response time; `hit` marks an HBM
    /// hit (response time 1 by construction).
    #[inline]
    pub fn record_serve(&mut self, core: CoreId, response: u64, hit: bool) {
        self.histogram.push(response);
        self.per_core[core as usize].push(response);
        if hit {
            self.hits += 1;
            self.core_hits[core as usize] += 1;
        }
    }

    /// Records a request entering the DRAM queue (a miss).
    #[inline]
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Records a far-channel fetch.
    #[inline]
    pub fn record_fetch(&mut self) {
        self.fetches += 1;
    }

    /// Records an eviction.
    #[inline]
    pub fn record_eviction(&mut self) {
        self.evictions += 1;
    }

    /// Records a priority remap.
    #[inline]
    pub fn record_remap(&mut self) {
        self.remaps += 1;
    }

    /// Samples the queue length at the end of a tick.
    #[inline]
    pub fn sample_queue_len(&mut self, len: usize) {
        self.queue_len_sum += len as u128;
        self.queue_len_samples += 1;
        self.max_queue_len = self.max_queue_len.max(len as u64);
    }

    /// Batched form of [`sample_queue_len`](Self::sample_queue_len): records
    /// `n` consecutive end-of-tick samples that all observed length `len`.
    /// Integer accumulation makes this bit-identical to `n` single samples —
    /// the engine's fast-forward path depends on that.
    #[inline]
    pub fn sample_queue_len_n(&mut self, len: usize, n: u64) {
        if n == 0 {
            return;
        }
        self.queue_len_sum += (len as u128) * (n as u128);
        self.queue_len_samples += n;
        self.max_queue_len = self.max_queue_len.max(len as u64);
    }

    /// Records `n` consecutive end-of-tick observations of a fully blocked
    /// machine (requests queued, zero effective channels). Batched for the
    /// same reason as [`sample_queue_len_n`](Self::sample_queue_len_n).
    #[inline]
    pub fn record_outage_blocked_n(&mut self, n: u64) {
        self.faults.outage_blocked_ticks += n;
    }

    /// Records a fetch started inside a degradation window.
    #[inline]
    pub fn record_degraded_fetch(&mut self) {
        self.faults.degraded_fetches += 1;
    }

    /// Records `failures` failed transfer attempts of one fetch.
    #[inline]
    pub fn record_transient_faults(&mut self, failures: u32) {
        self.faults.transient_faults += failures as u64;
    }

    /// Records a core finishing at `tick` (1-based completion time).
    #[inline]
    pub fn record_finish(&mut self, core: CoreId, tick: Tick) {
        self.finish[core as usize] = tick;
    }

    /// Freezes into a [`Report`].
    pub fn finish(self, makespan: Tick, truncated: bool) -> Report {
        // The global response summary is the exact merge of the per-core
        // accumulators (same integer sums), so the serve path only pays for
        // one moments update per request.
        let mut global = IntMoments::new();
        for m in &self.per_core {
            global.merge(m);
        }
        let served = global.count();
        let per_core = self
            .per_core
            .iter()
            .zip(&self.finish)
            .zip(&self.core_hits)
            .map(|((w, &finish_tick), &hits)| CoreReport {
                served: w.count(),
                hits,
                finish_tick,
                mean_response: w.mean(),
                max_response: w.max().unwrap_or(0),
            })
            .collect();
        Report {
            makespan,
            served,
            hits: self.hits,
            misses: self.misses,
            fetches: self.fetches,
            evictions: self.evictions,
            remaps: self.remaps,
            hit_rate: if served == 0 {
                0.0
            } else {
                self.hits as f64 / served as f64
            },
            response: ResponseSummary {
                count: served,
                mean: global.mean(),
                inconsistency: global.stddev(),
                min: global.min().unwrap_or(0),
                max: global.max().unwrap_or(0),
                p99_upper_bound: self.histogram.quantile_upper_bound(0.99),
            },
            mean_queue_len: if self.queue_len_samples == 0 {
                0.0
            } else {
                self.queue_len_sum as f64 / self.queue_len_samples as f64
            },
            max_queue_len: self.max_queue_len,
            per_core,
            faults: self.faults,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_correctly() {
        let mut m = MetricsCollector::new(2);
        m.record_serve(0, 1, true);
        m.record_serve(0, 3, false);
        m.record_miss();
        m.record_serve(1, 5, false);
        m.record_miss();
        m.record_fetch();
        m.record_fetch();
        m.record_eviction();
        m.record_finish(0, 10);
        m.record_finish(1, 12);
        m.sample_queue_len(4);
        m.sample_queue_len(0);
        let r = m.finish(12, false);
        assert_eq!(r.makespan, 12);
        assert_eq!(r.served, 3);
        assert_eq!(r.hits, 1);
        assert_eq!(r.misses, 2);
        assert_eq!(r.fetches, 2);
        assert_eq!(r.evictions, 1);
        assert!((r.hit_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.response.mean - 3.0).abs() < 1e-12);
        assert_eq!(r.response.min, 1);
        assert_eq!(r.response.max, 5);
        assert_eq!(r.mean_queue_len, 2.0);
        assert_eq!(r.max_queue_len, 4);
        assert_eq!(r.per_core[0].served, 2);
        assert_eq!(r.per_core[0].hits, 1);
        assert_eq!(r.per_core[1].finish_tick, 12);
        assert_eq!(r.worst_response(), 5);
    }

    #[test]
    fn empty_run_report_is_sane() {
        let m = MetricsCollector::new(0);
        let r = m.finish(0, false);
        assert_eq!(r.served, 0);
        assert_eq!(r.hit_rate, 0.0);
        assert_eq!(r.response.inconsistency, 0.0);
        assert_eq!(r.worst_response(), 0);
        assert_eq!(r.finish_spread(), 0.0);
    }

    #[test]
    fn finish_spread_measures_imbalance() {
        let mut m = MetricsCollector::new(2);
        m.record_serve(0, 1, true);
        m.record_serve(1, 1, true);
        m.record_finish(0, 100);
        m.record_finish(1, 300);
        let r = m.finish(300, false);
        assert!((r.finish_spread() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fault_counters_accumulate_and_default_to_zero() {
        let mut m = MetricsCollector::new(1);
        m.record_outage_blocked_n(5);
        m.record_outage_blocked_n(1);
        m.record_degraded_fetch();
        m.record_transient_faults(3);
        let r = m.finish(0, false);
        assert_eq!(r.faults.outage_blocked_ticks, 6);
        assert_eq!(r.faults.degraded_fetches, 1);
        assert_eq!(r.faults.transient_faults, 3);
        assert!(!r.faults.is_zero());
        assert!(MetricsCollector::new(0).finish(0, false).faults.is_zero());
    }

    #[test]
    fn truncation_flag_propagates() {
        let m = MetricsCollector::new(1);
        assert!(m.finish(5, true).truncated);
    }
}
