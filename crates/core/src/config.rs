//! Simulation configuration and the [`SimBuilder`] entry point.

use crate::arbitration::ArbitrationKind;
use crate::engine::Engine;
use crate::metrics::Report;
use crate::observer::{NoopObserver, SimObserver};
use crate::replacement::ReplacementKind;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// HBM capacity `k` in block slots.
    pub hbm_slots: usize,
    /// Far channels `q` between HBM and DRAM (paper: `1 ≤ q ≪ p`).
    pub channels: usize,
    /// Far-channel arbitration policy.
    pub arbitration: ArbitrationKind,
    /// Block-replacement policy.
    pub replacement: ReplacementKind,
    /// Far-channel transfer time in ticks (the paper's model: 1). Values
    /// above 1 model a slower DRAM link: a fetch started at `t` occupies
    /// its channel for `far_latency` ticks and the page is served at
    /// `t + far_latency` at the earliest — a first step toward the
    /// cycle-accurate timing the paper's future work calls for.
    pub far_latency: u64,
    /// Seed for every randomized component (policies, shuffles).
    pub seed: u64,
    /// Safety bound: abort (with `Report::truncated = true`) after this many
    /// ticks.
    pub max_ticks: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            hbm_slots: 1024,
            channels: 1,
            arbitration: ArbitrationKind::Fifo,
            replacement: ReplacementKind::Lru,
            far_latency: 1,
            seed: 0,
            max_ticks: u64::MAX,
        }
    }
}

impl SimConfig {
    /// Validates parameter sanity; returns a message on the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.hbm_slots == 0 {
            return Err("hbm_slots must be ≥ 1".into());
        }
        if self.channels == 0 {
            return Err("channels (q) must be ≥ 1".into());
        }
        if self.far_latency == 0 {
            return Err("far_latency must be ≥ 1 tick".into());
        }
        if let Some(period) = self.arbitration.period() {
            if period == 0 {
                return Err("remap period T must be ≥ 1 tick".into());
            }
        }
        Ok(())
    }
}

/// Fluent builder for simulation runs — the crate's main entry point.
///
/// ```
/// use hbm_core::{SimBuilder, ArbitrationKind, ReplacementKind, Workload};
///
/// let w = Workload::from_refs(vec![vec![0, 1, 0, 1], vec![5, 6, 5, 6]]);
/// let report = SimBuilder::new()
///     .hbm_slots(4)
///     .channels(1)
///     .arbitration(ArbitrationKind::Priority)
///     .replacement(ReplacementKind::Lru)
///     .seed(42)
///     .run(&w);
/// assert_eq!(report.served, 8);
/// ```
#[derive(Debug, Clone)]
pub struct SimBuilder {
    config: SimConfig,
}

impl Default for SimBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimBuilder {
    /// Starts from [`SimConfig::default`].
    pub fn new() -> Self {
        SimBuilder {
            config: SimConfig::default(),
        }
    }

    /// Starts from an explicit config.
    pub fn from_config(config: SimConfig) -> Self {
        SimBuilder { config }
    }

    /// Sets HBM capacity `k` (slots).
    pub fn hbm_slots(mut self, k: usize) -> Self {
        self.config.hbm_slots = k;
        self
    }

    /// Sets the number of far channels `q`.
    pub fn channels(mut self, q: usize) -> Self {
        self.config.channels = q;
        self
    }

    /// Sets the arbitration policy.
    pub fn arbitration(mut self, kind: ArbitrationKind) -> Self {
        self.config.arbitration = kind;
        self
    }

    /// Sets the replacement policy.
    pub fn replacement(mut self, kind: ReplacementKind) -> Self {
        self.config.replacement = kind;
        self
    }

    /// Sets the far-channel transfer time in ticks (default 1, the paper's
    /// model).
    pub fn far_latency(mut self, ticks: u64) -> Self {
        self.config.far_latency = ticks;
        self
    }

    /// Sets the seed for randomized policies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the tick safety bound.
    pub fn max_ticks(mut self, max: u64) -> Self {
        self.config.max_ticks = max;
        self
    }

    /// Convenience: re-parameterizes a priority-family arbitration kind with
    /// `T = multiple × k` ticks, the paper's way of quoting remap intervals
    /// ("we talk about T as a multiple of k", §4).
    pub fn remap_period_times_k(mut self, multiple: u64) -> Self {
        let period = multiple.saturating_mul(self.config.hbm_slots as u64).max(1);
        self.config.arbitration = match self.config.arbitration {
            ArbitrationKind::DynamicPriority { .. } => ArbitrationKind::DynamicPriority { period },
            ArbitrationKind::CyclePriority { .. } => ArbitrationKind::CyclePriority { period },
            ArbitrationKind::CycleReversePriority { .. } => {
                ArbitrationKind::CycleReversePriority { period }
            }
            ArbitrationKind::InterleavePriority { .. } => {
                ArbitrationKind::InterleavePriority { period }
            }
            other => other,
        };
        self
    }

    /// The config built so far.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation to completion (or `max_ticks`).
    ///
    /// # Panics
    /// Panics on invalid configuration (see [`SimConfig::validate`]).
    pub fn run(&self, workload: &Workload) -> Report {
        self.run_with_observer(workload, &mut NoopObserver)
    }

    /// Runs with a custom [`SimObserver`] receiving every event.
    pub fn run_with_observer<O: SimObserver>(
        &self,
        workload: &Workload,
        observer: &mut O,
    ) -> Report {
        if let Err(e) = self.config.validate() {
            panic!("invalid simulation config: {e}");
        }
        Engine::new(self.config, workload).run(observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_k_rejected() {
        let c = SimConfig {
            hbm_slots: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_q_rejected() {
        let c = SimConfig {
            channels: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_far_latency_rejected() {
        let c = SimConfig {
            far_latency: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_period_rejected() {
        let c = SimConfig {
            arbitration: ArbitrationKind::DynamicPriority { period: 0 },
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn remap_period_times_k_computes_ticks() {
        let b = SimBuilder::new()
            .hbm_slots(100)
            .arbitration(ArbitrationKind::DynamicPriority { period: 1 })
            .remap_period_times_k(10);
        assert_eq!(
            b.config().arbitration,
            ArbitrationKind::DynamicPriority { period: 1000 }
        );
    }

    #[test]
    fn remap_period_times_k_leaves_fifo_alone() {
        let b = SimBuilder::new()
            .arbitration(ArbitrationKind::Fifo)
            .remap_period_times_k(10);
        assert_eq!(b.config().arbitration, ArbitrationKind::Fifo);
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn run_panics_on_invalid_config() {
        let w = Workload::from_refs(vec![vec![0]]);
        SimBuilder::new().hbm_slots(0).run(&w);
    }
}
