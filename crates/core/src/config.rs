//! Simulation configuration and the [`SimBuilder`] entry point.

use crate::arbitration::ArbitrationKind;
use crate::engine::{Engine, EngineScratch};
use crate::error::{ConfigError, SimError};
use crate::fault::FaultPlan;
use crate::flat::FlatWorkload;
use crate::metrics::Report;
use crate::observer::{NoopObserver, SimObserver};
use crate::replacement::ReplacementKind;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// HBM capacity `k` in block slots.
    pub hbm_slots: usize,
    /// Far channels `q` between HBM and DRAM (paper: `1 ≤ q ≪ p`).
    pub channels: usize,
    /// Far-channel arbitration policy.
    pub arbitration: ArbitrationKind,
    /// Block-replacement policy.
    pub replacement: ReplacementKind,
    /// Far-channel transfer time in ticks (the paper's model: 1). Values
    /// above 1 model a slower DRAM link: a fetch started at `t` occupies
    /// its channel for `far_latency` ticks and the page is served at
    /// `t + far_latency` at the earliest — a first step toward the
    /// cycle-accurate timing the paper's future work calls for.
    pub far_latency: u64,
    /// Seed for every randomized component (policies, shuffles).
    pub seed: u64,
    /// Safety bound: abort (with `Report::truncated = true`) after this many
    /// ticks.
    pub max_ticks: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            hbm_slots: 1024,
            channels: 1,
            arbitration: ArbitrationKind::Fifo,
            replacement: ReplacementKind::Lru,
            far_latency: 1,
            seed: 0,
            max_ticks: u64::MAX,
        }
    }
}

impl SimConfig {
    /// Validates parameter sanity; returns a typed error pinpointing the
    /// first violated parameter (no string matching needed by callers).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.hbm_slots == 0 {
            return Err(ConfigError::ZeroHbmSlots);
        }
        if self.channels == 0 {
            return Err(ConfigError::ZeroChannels);
        }
        if self.far_latency == 0 {
            return Err(ConfigError::ZeroFarLatency);
        }
        if let Some(period) = self.arbitration.period() {
            if period == 0 {
                return Err(ConfigError::ZeroRemapPeriod);
            }
        }
        Ok(())
    }
}

/// Fluent builder for simulation runs — the crate's main entry point.
///
/// ```
/// use hbm_core::{SimBuilder, ArbitrationKind, ReplacementKind, Workload};
///
/// let w = Workload::from_refs(vec![vec![0, 1, 0, 1], vec![5, 6, 5, 6]]);
/// let report = SimBuilder::new()
///     .hbm_slots(4)
///     .channels(1)
///     .arbitration(ArbitrationKind::Priority)
///     .replacement(ReplacementKind::Lru)
///     .seed(42)
///     .run(&w);
/// assert_eq!(report.served, 8);
/// ```
#[derive(Debug, Clone)]
pub struct SimBuilder {
    config: SimConfig,
    faults: FaultPlan,
}

impl Default for SimBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimBuilder {
    /// Starts from [`SimConfig::default`] (and an empty fault plan).
    pub fn new() -> Self {
        SimBuilder {
            config: SimConfig::default(),
            faults: FaultPlan::default(),
        }
    }

    /// Starts from an explicit config.
    pub fn from_config(config: SimConfig) -> Self {
        SimBuilder {
            config,
            faults: FaultPlan::default(),
        }
    }

    /// Sets HBM capacity `k` (slots).
    pub fn hbm_slots(mut self, k: usize) -> Self {
        self.config.hbm_slots = k;
        self
    }

    /// Sets the number of far channels `q`.
    pub fn channels(mut self, q: usize) -> Self {
        self.config.channels = q;
        self
    }

    /// Sets the arbitration policy.
    pub fn arbitration(mut self, kind: ArbitrationKind) -> Self {
        self.config.arbitration = kind;
        self
    }

    /// Sets the replacement policy.
    pub fn replacement(mut self, kind: ReplacementKind) -> Self {
        self.config.replacement = kind;
        self
    }

    /// Sets the far-channel transfer time in ticks (default 1, the paper's
    /// model).
    pub fn far_latency(mut self, ticks: u64) -> Self {
        self.config.far_latency = ticks;
        self
    }

    /// Sets the seed for randomized policies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the tick safety bound.
    pub fn max_ticks(mut self, max: u64) -> Self {
        self.config.max_ticks = max;
        self
    }

    /// Injects a deterministic [`FaultPlan`] (default: no faults).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Convenience: re-parameterizes a priority-family arbitration kind with
    /// `T = multiple × k` ticks, the paper's way of quoting remap intervals
    /// ("we talk about T as a multiple of k", §4).
    pub fn remap_period_times_k(mut self, multiple: u64) -> Self {
        let period = multiple.saturating_mul(self.config.hbm_slots as u64).max(1);
        self.config.arbitration = match self.config.arbitration {
            ArbitrationKind::DynamicPriority { .. } => ArbitrationKind::DynamicPriority { period },
            ArbitrationKind::CyclePriority { .. } => ArbitrationKind::CyclePriority { period },
            ArbitrationKind::CycleReversePriority { .. } => {
                ArbitrationKind::CycleReversePriority { period }
            }
            ArbitrationKind::InterleavePriority { .. } => {
                ArbitrationKind::InterleavePriority { period }
            }
            other => other,
        };
        self
    }

    /// The config built so far.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The fault plan built so far.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Validates config and fault plan, returning a ready-to-run
    /// [`Engine`] — the fallible entry point for harnesses that drive the
    /// tick loop themselves (budgeted sweeps, debuggers).
    pub fn try_build(&self, workload: &Workload) -> Result<Engine, SimError> {
        self.config.validate()?;
        self.faults.validate()?;
        Ok(Engine::with_faults(
            self.config,
            self.faults.clone(),
            workload,
        ))
    }

    /// Like [`try_build`](Self::try_build), but over a shared pre-indexed
    /// workload — the cheap per-cell entry point for sweeps (see
    /// [`FlatWorkload`]). Bit-identical to building from
    /// `flat.workload()`.
    pub fn try_build_flat(&self, flat: &Arc<FlatWorkload>) -> Result<Engine, SimError> {
        self.config.validate()?;
        self.faults.validate()?;
        Ok(Engine::from_flat(
            self.config,
            self.faults.clone(),
            Arc::clone(flat),
        ))
    }

    /// Like [`try_build_flat`](Self::try_build_flat), additionally
    /// recycling the per-cell buffers held in `scratch` (refill it with
    /// [`Engine::run_reusing`] / [`Engine::into_report_reusing`]).
    pub fn try_build_flat_reusing(
        &self,
        flat: &Arc<FlatWorkload>,
        scratch: &mut EngineScratch,
    ) -> Result<Engine, SimError> {
        self.config.validate()?;
        self.faults.validate()?;
        Ok(Engine::from_flat_with_scratch(
            self.config,
            self.faults.clone(),
            Arc::clone(flat),
            scratch,
        ))
    }

    /// Runs the simulation to completion (or `max_ticks`), returning a
    /// typed error instead of panicking on an invalid configuration.
    pub fn try_run(&self, workload: &Workload) -> Result<Report, SimError> {
        self.try_run_with_observer(workload, &mut NoopObserver)
    }

    /// Fallible variant of [`run_with_observer`](Self::run_with_observer).
    pub fn try_run_with_observer<O: SimObserver>(
        &self,
        workload: &Workload,
        observer: &mut O,
    ) -> Result<Report, SimError> {
        Ok(self.try_build(workload)?.run(observer))
    }

    /// Runs the simulation to completion (or `max_ticks`).
    ///
    /// Thin panicking wrapper over [`try_run`](Self::try_run) for examples
    /// and tests; library and harness code should prefer the `try_*`
    /// entry points.
    ///
    /// # Panics
    /// Panics on invalid configuration (see [`SimConfig::validate`] and
    /// [`FaultPlan::validate`]).
    pub fn run(&self, workload: &Workload) -> Report {
        self.run_with_observer(workload, &mut NoopObserver)
    }

    /// Runs with a custom [`SimObserver`] receiving every event.
    ///
    /// # Panics
    /// Panics on invalid configuration, like [`run`](Self::run).
    pub fn run_with_observer<O: SimObserver>(
        &self,
        workload: &Workload,
        observer: &mut O,
    ) -> Report {
        match self.try_run_with_observer(workload, observer) {
            Ok(report) => report,
            Err(e) => panic!("invalid simulation config: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_k_rejected() {
        let c = SimConfig {
            hbm_slots: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_q_rejected() {
        let c = SimConfig {
            channels: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_far_latency_rejected() {
        let c = SimConfig {
            far_latency: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_period_rejected() {
        let c = SimConfig {
            arbitration: ArbitrationKind::DynamicPriority { period: 0 },
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn remap_period_times_k_computes_ticks() {
        let b = SimBuilder::new()
            .hbm_slots(100)
            .arbitration(ArbitrationKind::DynamicPriority { period: 1 })
            .remap_period_times_k(10);
        assert_eq!(
            b.config().arbitration,
            ArbitrationKind::DynamicPriority { period: 1000 }
        );
    }

    #[test]
    fn remap_period_times_k_leaves_fifo_alone() {
        let b = SimBuilder::new()
            .arbitration(ArbitrationKind::Fifo)
            .remap_period_times_k(10);
        assert_eq!(b.config().arbitration, ArbitrationKind::Fifo);
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn run_panics_on_invalid_config() {
        let w = Workload::from_refs(vec![vec![0]]);
        SimBuilder::new().hbm_slots(0).run(&w);
    }

    #[test]
    fn validation_errors_are_typed() {
        let c = |f: fn(&mut SimConfig)| {
            let mut c = SimConfig::default();
            f(&mut c);
            c.validate()
        };
        assert_eq!(c(|c| c.hbm_slots = 0), Err(ConfigError::ZeroHbmSlots));
        assert_eq!(c(|c| c.channels = 0), Err(ConfigError::ZeroChannels));
        assert_eq!(c(|c| c.far_latency = 0), Err(ConfigError::ZeroFarLatency));
        assert_eq!(
            c(|c| c.arbitration = ArbitrationKind::CyclePriority { period: 0 }),
            Err(ConfigError::ZeroRemapPeriod)
        );
    }

    #[test]
    fn try_run_surfaces_config_error_instead_of_panicking() {
        let w = Workload::from_refs(vec![vec![0]]);
        let err = SimBuilder::new().channels(0).try_run(&w).unwrap_err();
        assert_eq!(err, SimError::Config(ConfigError::ZeroChannels));
    }

    #[test]
    fn try_run_validates_the_fault_plan_too() {
        let w = Workload::from_refs(vec![vec![0]]);
        let err = SimBuilder::new()
            .fault_plan(FaultPlan::new().outage(9, 3, 1))
            .try_run(&w)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::Config(ConfigError::EmptyFaultWindow { start: 9, end: 3 })
        );
    }

    #[test]
    fn try_run_matches_run_on_valid_config() {
        let w = Workload::from_refs(vec![vec![0, 1, 0, 1], vec![2, 3]]);
        let b = SimBuilder::new().hbm_slots(4).channels(1);
        let a = b.try_run(&w).unwrap();
        let r = b.run(&w);
        assert_eq!(a.makespan, r.makespan);
        assert_eq!(a.hits, r.hits);
    }

    #[test]
    fn try_build_yields_a_steppable_engine() {
        let w = Workload::from_refs(vec![vec![0, 0, 0]]);
        let mut engine = SimBuilder::new().try_build(&w).unwrap();
        let mut guard = 0;
        while !engine.is_done() {
            engine.step(&mut crate::observer::NoopObserver);
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(engine.into_report().served, 3);
    }
}
