//! Workloads: one page-reference trace per core (paper §3.2).
//!
//! A [`Trace`] is a core-local sequence of page references (`u32` local
//! ids); a [`Workload`] bundles `p` of them. Per Property 1 the simulator
//! namespaces local ids by core, so two cores referencing local page 7
//! reference *different* global pages.

use crate::ids::{CoreId, GlobalPage, LocalPage};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One core's page-reference sequence, with core-local page ids.
///
/// Traces are reference-counted so a workload replicated across many cores
/// (or reused across a parameter sweep) shares storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    refs: Arc<[LocalPage]>,
}

impl Trace {
    /// Wraps a sequence of local page references.
    pub fn new(refs: Vec<LocalPage>) -> Self {
        Trace { refs: refs.into() }
    }

    /// Number of references.
    #[inline]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True for the empty trace (a core with no work).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The `i`-th reference.
    #[inline]
    pub fn get(&self, i: usize) -> LocalPage {
        self.refs[i]
    }

    /// All references as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[LocalPage] {
        &self.refs
    }

    /// Number of distinct pages referenced.
    pub fn unique_pages(&self) -> usize {
        let mut sorted: Vec<LocalPage> = self.refs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Collapses runs of consecutive identical references into one.
    ///
    /// Under the model a repeated reference to the page just served is a
    /// guaranteed hit costing one tick; collapsing shortens traces (a lot,
    /// for scan-heavy code) without changing which policy wins. The
    /// `ablation_collapse` bench quantifies this.
    pub fn collapse_consecutive(&self) -> Trace {
        let mut out = Vec::with_capacity(self.refs.len() / 2 + 1);
        for &r in self.refs.iter() {
            if out.last() != Some(&r) {
                out.push(r);
            }
        }
        Trace::new(out)
    }
}

impl From<Vec<LocalPage>> for Trace {
    fn from(v: Vec<LocalPage>) -> Self {
        Trace::new(v)
    }
}

/// A `p`-core workload: one trace per core.
///
/// By default traces are **disjoint** (Property 1, §3): each core's local
/// page ids live in a private namespace. A workload built with
/// [`Workload::shared_from_refs`] instead interprets ids *globally*, so
/// several cores can reference — and contend for or share — the same page.
/// Non-disjoint sequences are the paper's first listed item of future work
/// (§6.1); the engine supports them by coalescing far-channel requests for
/// the same page.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Workload {
    traces: Vec<Trace>,
    #[serde(default)]
    shared: bool,
}

impl Workload {
    /// A workload with no cores.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from per-core reference vectors (disjoint namespaces).
    pub fn from_refs(traces: Vec<Vec<LocalPage>>) -> Self {
        Workload {
            traces: traces.into_iter().map(Trace::new).collect(),
            shared: false,
        }
    }

    /// Builds a **non-disjoint** workload: page ids are global, so the same
    /// id on two cores is the same page (future-work extension, §6.1).
    pub fn shared_from_refs(traces: Vec<Vec<LocalPage>>) -> Self {
        Workload {
            traces: traces.into_iter().map(Trace::new).collect(),
            shared: true,
        }
    }

    /// Whether page ids are shared across cores.
    #[inline]
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// Adds one core's trace; returns the new core's id.
    pub fn push(&mut self, trace: Trace) -> CoreId {
        self.traces.push(trace);
        (self.traces.len() - 1) as CoreId
    }

    /// Replicates `trace` onto `p` cores (sharing storage). Each core still
    /// addresses a disjoint page set because ids are namespaced per core.
    pub fn replicate(trace: Trace, p: usize) -> Self {
        Workload {
            traces: vec![trace; p],
            shared: false,
        }
    }

    /// Number of cores `p`.
    #[inline]
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// The trace of `core`.
    #[inline]
    pub fn trace(&self, core: CoreId) -> &Trace {
        &self.traces[core as usize]
    }

    /// All traces.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Total references across cores.
    pub fn total_refs(&self) -> usize {
        self.traces.iter().map(Trace::len).sum()
    }

    /// Total distinct global pages across cores: the sum of per-core unique
    /// counts for disjoint workloads, the union size for shared ones.
    pub fn total_unique_pages(&self) -> usize {
        if !self.shared {
            return self.traces.iter().map(Trace::unique_pages).sum();
        }
        let mut all: Vec<LocalPage> = self
            .traces
            .iter()
            .flat_map(|t| t.as_slice().iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// Longest single trace — a trivial makespan lower bound, since a core
    /// serves at most one reference per tick.
    pub fn max_trace_len(&self) -> usize {
        self.traces.iter().map(Trace::len).max().unwrap_or(0)
    }

    /// The global page for `core`'s reference index `i`.
    #[inline]
    pub fn global_page(&self, core: CoreId, i: usize) -> GlobalPage {
        let local = self.traces[core as usize].get(i);
        if self.shared {
            GlobalPage(local as u64)
        } else {
            GlobalPage::new(core, local)
        }
    }

    /// Collapses consecutive duplicate references in every trace.
    pub fn collapse_consecutive(&self) -> Workload {
        Workload {
            traces: self
                .traces
                .iter()
                .map(Trace::collapse_consecutive)
                .collect(),
            shared: self.shared,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_basics() {
        let t = Trace::new(vec![1, 2, 2, 3]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.get(2), 2);
        assert_eq!(t.unique_pages(), 3);
    }

    #[test]
    fn collapse_consecutive_removes_runs_only() {
        let t = Trace::new(vec![1, 1, 1, 2, 2, 1, 3, 3, 3, 3]);
        assert_eq!(t.collapse_consecutive().as_slice(), &[1, 2, 1, 3]);
        // Empty trace stays empty.
        assert!(Trace::new(vec![]).collapse_consecutive().is_empty());
    }

    #[test]
    fn workload_counts() {
        let w = Workload::from_refs(vec![vec![0, 1, 2], vec![0, 0, 0, 0]]);
        assert_eq!(w.cores(), 2);
        assert_eq!(w.total_refs(), 7);
        assert_eq!(w.total_unique_pages(), 4); // 3 + 1, disjoint namespaces
        assert_eq!(w.max_trace_len(), 4);
    }

    #[test]
    fn replicate_shares_storage_but_namespaces_pages() {
        let w = Workload::replicate(Trace::new(vec![5, 6]), 3);
        assert_eq!(w.cores(), 3);
        assert_eq!(w.total_unique_pages(), 6);
        assert_ne!(w.global_page(0, 0), w.global_page(1, 0));
        assert_eq!(w.global_page(2, 1), GlobalPage::new(2, 6));
    }

    #[test]
    fn empty_workload_edge_cases() {
        let w = Workload::new();
        assert_eq!(w.cores(), 0);
        assert_eq!(w.total_refs(), 0);
        assert_eq!(w.max_trace_len(), 0);
    }

    #[test]
    fn push_returns_sequential_core_ids() {
        let mut w = Workload::new();
        assert_eq!(w.push(Trace::new(vec![1])), 0);
        assert_eq!(w.push(Trace::new(vec![2])), 1);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let t = Trace::new((0..1000).collect());
        let u = t.clone();
        assert_eq!(t.as_slice(), u.as_slice());
        assert!(
            std::sync::Arc::ptr_eq(&t.refs, &u.refs),
            "clone shares storage"
        );
    }
}
