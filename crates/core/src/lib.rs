//! # hbm-core — the HBM+DRAM model simulator
//!
//! A from-scratch implementation of the theoretical model and simulator of
//! DeLayo, Zhang, Agrawal, Bender, Berry, Das, Moseley & Phillips,
//! *Automatic HBM Management: Models and Algorithms* (SPAA 2022).
//!
//! ## The model (paper §2)
//!
//! `p` cores each replay a disjoint page-reference sequence against a shared
//! High-Bandwidth Memory of `k` block slots. HBM connects to unbounded DRAM
//! through `q ≪ p` *far channels*. Every block transfer costs one tick. A
//! request that hits in HBM is served in 1 tick; a miss must win a far
//! channel, taking ≥ 2 ticks and potentially unboundedly long under
//! contention. The objective is **makespan** — the tick at which the last
//! core finishes — which the paper shows is the right metric (miss counts
//! are not, §2).
//!
//! Two policies govern the system (§1.1):
//!
//! * the **far-channel arbitration policy** ([`arbitration`]) picks which
//!   `≤ q` queued requests cross to DRAM each tick — FIFO is Ω(p)-
//!   competitive in the worst case (Theorem 2) while Priority is O(1)-
//!   competitive (Theorem 1) and O(q)-competitive with `q` channels
//!   (Theorem 3);
//! * the **block-replacement policy** ([`replacement`]) picks eviction
//!   victims — LRU and friends all work (replacement "is not the problem").
//!
//! ## Quick example
//!
//! ```
//! use hbm_core::{ArbitrationKind, ReplacementKind, SimBuilder, Workload};
//!
//! // Four cores cycling over eight pages each, HBM holding half of them.
//! let trace: Vec<u32> = (0..8).cycle().take(64).collect();
//! let workload = Workload::from_refs(vec![trace; 4]);
//!
//! let fifo = SimBuilder::new()
//!     .hbm_slots(16)
//!     .channels(1)
//!     .arbitration(ArbitrationKind::Fifo)
//!     .replacement(ReplacementKind::Lru)
//!     .run(&workload);
//!
//! let prio = SimBuilder::new()
//!     .hbm_slots(16)
//!     .channels(1)
//!     .arbitration(ArbitrationKind::Priority)
//!     .replacement(ReplacementKind::Lru)
//!     .run(&workload);
//!
//! // Priority protects the working sets of high-priority cores.
//! assert!(prio.makespan <= fifo.makespan);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitration;
pub mod bounds;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod flat;
pub mod fxhash;
pub mod hbm;
pub mod ids;
pub mod lockstep;
pub mod metrics;
pub mod observer;
pub mod oracle;
pub mod page_index;
pub mod replacement;
pub mod rng;
pub mod slab_list;
pub mod stats;
pub mod testkit;
pub mod triage;
pub mod workload;

pub use arbitration::{ArbitrationKind, ArbitrationPolicy, Request};
pub use config::{SimBuilder, SimConfig};
pub use engine::{Engine, EngineScratch};
pub use error::{ConfigError, SimError};
pub use fault::{DegradationWindow, FaultPlan, OutageWindow, TransientFaults};
pub use flat::FlatWorkload;
pub use ids::{CoreId, GlobalPage, LocalPage, Tick};
pub use lockstep::{BatchCell, BatchEngine, BatchScratch};
pub use metrics::{CoreReport, FaultCounters, Report, ResponseSummary};
pub use observer::{FaultEvent, NoopObserver, RecordingObserver, SimObserver};
pub use oracle::OracleEngine;
pub use page_index::PageIndexer;
pub use replacement::{ReplacementKind, ReplacementPolicy};
pub use triage::{first_divergence, DivergenceReport, EventDivergence};
pub use workload::{Trace, Workload};
