//! Batched lockstep execution: many simulation cells over one shared
//! workload, stepped round-robin over structure-of-arrays state.
//!
//! Every grid in the experiment harness (Figure 2/3 panels, ratio sweeps,
//! journaled sweeps) evaluates many configurations — varying `k`, `q`,
//! arbitration, replacement, fault plan — of the *same* workload. The
//! scalar [`Engine`] runs them one at a time, each walking its own
//! freshly-built state. [`BatchEngine`] instead lays the per-cell mutable
//! state out as contiguous per-cell columns of shared backing vectors
//! (page tables, worklist bitsets, waiter chains, channel timelines,
//! core runtimes) and advances all live cells round-robin. The cells of a
//! batch share the flattened trace and its dense page index via one
//! `Arc<FlatWorkload>` (PR 4), and the column arena is allocated once per
//! batch instead of once per cell.
//!
//! # Phase-major execution
//!
//! Because cells share no mutable state, *any* interleaving of per-cell
//! steps produces bit-identical trajectories — scheduling is purely a
//! performance knob. The default executor is **phase-major**: each round
//! runs one tick phase of the five-step loop across *all* live cells
//! before moving to the next phase (all issue scans, then all evictions,
//! then all serves, …). The tick is factored into phase methods on
//! [`CellCtx`] (`tick_begin` / `tick_issue` / `tick_evict` / `tick_serve`
//! / `tick_transfer` / `tick_end`) and the scalar `step` is nothing but
//! those phases in canonical order, so both executors share the phase
//! bodies and bit-identity holds by construction.
//!
//! PR 6 measured that re-slicing the twelve column windows per step costs
//! ~20% over the scalar path; naive phase-major would re-slice *per
//! phase* and sink further. The phase-major driver therefore partitions
//! every column into its disjoint per-cell windows **once per run**
//! (iterated `split_at_mut`, one `CellCtx` per cell held for the whole
//! run) so a phase pass is a plain indexed loop over prebuilt contexts —
//! the per-phase marginal cost is one bounds check and one call. Each
//! phase pass walks the n×p core-column matrix / n×words bitset matrix /
//! ragged `chan_off` channel timelines row by row with the same
//! word-parallel scans as the scalar engine, back to back across cells,
//! so the phase body's code and branch patterns stay hot in the core
//! while trajectories diverge freely.
//!
//! Fast-forward composes per cell, not globally: in the round's begin
//! phase each cell skips to *its own* next event tick (which subsumes a
//! cross-cell `min` — a global minimum would wake every cell at the
//! earliest event of any cell and re-prove inertness repeatedly), so
//! quiescent spans cost zero phase passes and cells clamped at
//! `max_ticks` leave the live worklist permanently.
//!
//! The cell-major reference executor (one cell at a time through
//! [`QUIET_CHUNK`](BatchEngine::QUIET_CHUNK)-step column borrows) is kept
//! as [`BatchEngine::run_cell_major`] / `run_quiet_cell_major`; the bench
//! harness runs both and `BENCH_9.json`'s `lockstep_grid` section records
//! scalar vs cell-major vs phase-major wall time honestly.
//!
//! # Bit-identity by construction
//!
//! A batch is **not** a new simulator: each round delegates every live
//! cell to the same [`CellCtx`] tick implementation the scalar engine
//! runs, over that cell's column windows. The canonical intra-tick
//! ordering (PR 1) and fault-plan semantics (PR 3) therefore hold per
//! cell automatically — even when cells diverge in tick count, outage
//! windows, or truncation — and cells never interact: the round-robin
//! interleaving is immaterial because cells share no mutable state. The
//! lockstep differential suite (`crates/core/tests/lockstep_differential.rs`)
//! re-proves the per-cell trajectories bit-identical to both [`Engine`]
//! and the oracle, event streams and metrics included.
//!
//! # Ragged termination and budgets
//!
//! Cells finish (or hit their own `max_ticks`) independently; a finished
//! cell simply stops being stepped while survivors continue unperturbed.
//! Harness-level wall-clock budgets truncate at batch granularity: abandon
//! the whole engine mid-run and [`BatchEngine::into_reports`] marks every
//! unfinished cell `truncated`, exactly like the scalar engine's
//! cooperative truncation.

use crate::arbitration::{Arbiter, Request};
use crate::config::SimConfig;
use crate::engine::{fill_cores, CellCtx, CellScalars, CoreRt, EngineScratch, PageRt, NIL};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::flat::FlatWorkload;
use crate::hbm::{Hbm, HbmBufs};
use crate::ids::Tick;
use crate::metrics::{MetricsCollector, Report};
use crate::observer::{NoopObserver, SimObserver};
use std::sync::Arc;

/// One cell of a batch: a full simulation configuration plus its fault
/// plan, to be run against the batch's shared workload.
#[derive(Debug, Clone, Default)]
pub struct BatchCell {
    /// The cell's simulation parameters (k, q, policies, seed, budget).
    pub config: SimConfig,
    /// The cell's injected fault schedule (empty for fault-free runs).
    pub faults: FaultPlan,
}

/// Per-cell buffers that cannot be columnized: growable queues and the
/// HBM slot tables, whose sizes depend on per-cell `k`/`q`.
#[derive(Debug, Default)]
struct CellBufs {
    fetch_buf: Vec<Request>,
    in_flight: Vec<(Tick, Request)>,
    hbm: HbmBufs,
}

/// Recycled backing storage for a [`BatchEngine`] — the batched analogue
/// of [`EngineScratch`], threaded through
/// [`BatchEngine::try_with_scratch`] and harvested back by
/// [`BatchEngine::into_reports_reusing`].
///
/// **Soundness invariant** (same as [`EngineScratch`]): construction
/// re-initializes every column with `clear()` + `resize(n, v)` and every
/// per-cell buffer with an equivalent full overwrite, so a batch built
/// from a scratch is bit-identical to one built fresh no matter what the
/// scratch previously held — including a scratch abandoned hollow because
/// the engine owning its buffers panicked mid-run. The batch scratch-panic
/// suite (`crates/experiments/tests/batch_scratch_panic.rs`) asserts this.
#[derive(Debug, Default)]
pub struct BatchScratch {
    cores: Vec<CoreRt>,
    issue_bits: Vec<u64>,
    issue_next_bits: Vec<u64>,
    ready_bits: Vec<u64>,
    ready_next_bits: Vec<u64>,
    pages: Vec<PageRt>,
    waiter_next: Vec<u32>,
    channel_busy: Vec<Tick>,
    cells: Vec<CellBufs>,
    /// Scratch for the scalar fallback path: harnesses that route
    /// singleton batches through the plain [`Engine`] (no columnization
    /// overhead for a batch of one) park its buffers here so both paths
    /// recycle through one object.
    scalar: EngineScratch,
}

impl BatchScratch {
    /// The embedded scalar-engine scratch, for harnesses falling back to
    /// the plain [`Engine`] on singleton batches.
    pub fn scalar_mut(&mut self) -> &mut EngineScratch {
        &mut self.scalar
    }
}

/// Runs a batch of configuration cells over one shared workload in
/// lockstep (see module docs). Construct with [`try_new`](Self::try_new),
/// drive with [`run`](Self::run) or [`step_round`](Self::step_round).
pub struct BatchEngine {
    flat: Arc<FlatWorkload>,
    /// Cores per cell (`flat.cores()`), the column stride for core-indexed
    /// columns.
    p: usize,
    /// Bitset words per cell (`p.div_ceil(64)`).
    words: usize,
    /// Pages per cell (`flat.total_pages()`).
    total_pages: usize,
    configs: Vec<SimConfig>,
    plans: Vec<FaultPlan>,
    scalars: Vec<CellScalars>,
    hbms: Vec<Hbm>,
    arbiters: Vec<Arbiter>,
    metrics: Vec<MetricsCollector>,
    cell_bufs: Vec<CellBufs>,
    /// Prefix offsets into `channel_busy`: cell `i` owns
    /// `channel_busy[chan_off[i]..chan_off[i + 1]]` (cells may differ in
    /// `q`, so this column is ragged).
    chan_off: Vec<usize>,
    // Structure-of-arrays columns; cell `i` owns the window
    // `[i * stride, (i + 1) * stride)` of each.
    cores: Vec<CoreRt>,
    issue_bits: Vec<u64>,
    issue_next_bits: Vec<u64>,
    ready_bits: Vec<u64>,
    ready_next_bits: Vec<u64>,
    pages: Vec<PageRt>,
    waiter_next: Vec<u32>,
    channel_busy: Vec<Tick>,
}

impl BatchEngine {
    /// Prepares a lockstep run of `cells` over the shared `flat` workload.
    ///
    /// Validates every cell's config and fault plan up front (first error
    /// wins), so a batch either runs whole or not at all — per-cell
    /// validation errors should be filtered out by the harness before
    /// batching, exactly as with the scalar `try_build` path.
    pub fn try_new(flat: Arc<FlatWorkload>, cells: &[BatchCell]) -> Result<Self, SimError> {
        let mut scratch = BatchScratch::default();
        Self::try_with_scratch(flat, cells, &mut scratch)
    }

    /// Like [`try_new`](Self::try_new), but recycling the backing storage
    /// held in `scratch` (left hollow; refill it via
    /// [`into_reports_reusing`](Self::into_reports_reusing)).
    /// Bit-identical to a fresh construction regardless of the scratch's
    /// prior contents.
    pub fn try_with_scratch(
        flat: Arc<FlatWorkload>,
        cells: &[BatchCell],
        scratch: &mut BatchScratch,
    ) -> Result<Self, SimError> {
        for cell in cells {
            cell.config.validate()?;
            cell.faults.validate()?;
        }
        let n = cells.len();
        let p = flat.cores();
        let words = p.div_ceil(64);
        let total_pages = flat.total_pages();
        let BatchScratch {
            mut cores,
            mut issue_bits,
            mut issue_next_bits,
            mut ready_bits,
            mut ready_next_bits,
            mut pages,
            mut waiter_next,
            mut channel_busy,
            cells: mut cell_bufs,
            scalar,
        } = std::mem::take(scratch);
        // Every column is fully re-initialized (clear + resize overwrites
        // all elements) — the BatchScratch soundness invariant.
        cores.clear();
        cores.resize(n * p, CoreRt::IDLE);
        issue_bits.clear();
        issue_bits.resize(n * words, 0);
        issue_next_bits.clear();
        issue_next_bits.resize(n * words, 0);
        ready_bits.clear();
        ready_bits.resize(n * words, 0);
        ready_next_bits.clear();
        ready_next_bits.resize(n * words, 0);
        pages.clear();
        pages.resize(n * total_pages, PageRt::EMPTY);
        waiter_next.clear();
        waiter_next.resize(n * p, NIL);
        let mut chan_off = Vec::with_capacity(n + 1);
        chan_off.push(0usize);
        for cell in cells {
            chan_off.push(chan_off.last().unwrap() + cell.config.channels);
        }
        channel_busy.clear();
        channel_busy.resize(*chan_off.last().unwrap(), 0);
        // Surplus per-cell buffers are dropped; missing ones default in.
        cell_bufs.truncate(n);
        cell_bufs.resize_with(n, CellBufs::default);
        // Park the scalar-fallback scratch back so it survives the batch.
        scratch.scalar = scalar;

        let mut configs = Vec::with_capacity(n);
        let mut plans = Vec::with_capacity(n);
        let mut scalars = Vec::with_capacity(n);
        let mut hbms = Vec::with_capacity(n);
        let mut arbiters = Vec::with_capacity(n);
        let mut metrics = Vec::with_capacity(n);
        for (i, cell) in cells.iter().enumerate() {
            let config = cell.config;
            let bufs = &mut cell_bufs[i];
            bufs.fetch_buf.clear();
            bufs.fetch_buf.reserve(config.channels);
            bufs.in_flight.clear();
            bufs.in_flight.reserve(config.channels);
            let (issue_count, remaining) = fill_cores(
                &flat,
                &mut cores[i * p..(i + 1) * p],
                &mut issue_bits[i * words..(i + 1) * words],
            );
            let arbiter = config.arbitration.build_dispatch(p, config.seed);
            let next_remap = arbiter.next_remap_at_or_after(0);
            hbms.push(Hbm::with_indexer_reusing(
                config.hbm_slots,
                config.replacement,
                config.seed,
                Arc::clone(flat.indexer()),
                std::mem::take(&mut bufs.hbm),
            ));
            arbiters.push(arbiter);
            metrics.push(MetricsCollector::new(p));
            scalars.push(CellScalars {
                issue_count,
                issue_next_count: 0,
                ready_count: 0,
                ready_next_count: 0,
                queue_len: 0,
                next_remap,
                plan_active: !cell.faults.is_empty(),
                last_down: 0,
                tick: 0,
                remaining,
                makespan: 0,
            });
            configs.push(config);
            plans.push(cell.faults.clone());
        }
        Ok(BatchEngine {
            flat,
            p,
            words,
            total_pages,
            configs,
            plans,
            scalars,
            hbms,
            arbiters,
            metrics,
            cell_bufs,
            chan_off,
            cores,
            issue_bits,
            issue_next_bits,
            ready_bits,
            ready_next_bits,
            pages,
            waiter_next,
            channel_busy,
        })
    }

    /// Number of cells in the batch.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True for an empty batch (zero cells).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// True once every cell has finished or hit its own `max_ticks`.
    pub fn is_done(&self) -> bool {
        (0..self.len()).all(|i| !self.cell_active(i))
    }

    /// Whether cell `i` still has ticks to execute.
    pub(crate) fn cell_active(&self, i: usize) -> bool {
        self.scalars[i].remaining != 0 && self.scalars[i].tick < self.configs[i].max_ticks
    }

    /// Cell `i`'s tick about to execute (triage inspection).
    pub(crate) fn cell_tick(&self, i: usize) -> Tick {
        self.scalars[i].tick
    }

    /// Human-readable snapshot of cell `i`'s state, for the divergence
    /// triage tool ([`crate::triage`]).
    pub(crate) fn cell_state_dump(&mut self, i: usize) -> String {
        self.cell_mut(i).dump_state()
    }

    /// Lends cell `i`'s column windows and per-cell state to the shared
    /// tick implementation.
    fn cell_mut(&mut self, i: usize) -> CellCtx<'_> {
        let p = self.p;
        let words = self.words;
        let total_pages = self.total_pages;
        let bufs = &mut self.cell_bufs[i];
        CellCtx {
            config: &self.configs[i],
            flat: &self.flat,
            plan: &self.plans[i],
            hbm: &mut self.hbms[i],
            arbiter: &mut self.arbiters[i],
            metrics: &mut self.metrics[i],
            cores: &mut self.cores[i * p..(i + 1) * p],
            issue_bits: &mut self.issue_bits[i * words..(i + 1) * words],
            issue_next_bits: &mut self.issue_next_bits[i * words..(i + 1) * words],
            ready_bits: &mut self.ready_bits[i * words..(i + 1) * words],
            ready_next_bits: &mut self.ready_next_bits[i * words..(i + 1) * words],
            pages: &mut self.pages[i * total_pages..(i + 1) * total_pages],
            waiter_next: &mut self.waiter_next[i * p..(i + 1) * p],
            channel_busy: &mut self.channel_busy[self.chan_off[i]..self.chan_off[i + 1]],
            fetch_buf: &mut bufs.fetch_buf,
            in_flight: &mut bufs.in_flight,
            s: &mut self.scalars[i],
        }
    }

    /// Executes one tick of cell `i` with its observer (no-op when the
    /// cell is finished or out of budget). Exposed for harnesses that
    /// need per-cell stepping; [`step_round`](Self::step_round) is the
    /// normal driver.
    pub fn step_cell<O: SimObserver>(&mut self, i: usize, observer: &mut O) {
        if !self.cell_active(i) {
            return;
        }
        self.cell_mut(i).step(observer);
    }

    /// Advances cell `i` by up to `chunk` steps under **one** borrow of
    /// its column windows, returning the number of steps executed (0 when
    /// the cell is already inactive). Bit-identical to `chunk` calls of
    /// [`step_cell`](Self::step_cell): cells share no mutable state, so
    /// stepping granularity is unobservable per cell — but re-slicing the
    /// twelve column windows per step is not free, and the chunked form
    /// amortizes it away (see the module docs on scheduling).
    pub fn step_cell_chunk<O: SimObserver>(
        &mut self,
        i: usize,
        observer: &mut O,
        chunk: usize,
    ) -> usize {
        if chunk == 0 || !self.cell_active(i) {
            return 0;
        }
        let max_ticks = self.configs[i].max_ticks;
        let mut ctx = self.cell_mut(i);
        let mut steps = 0;
        while steps < chunk {
            ctx.step(observer);
            steps += 1;
            if ctx.s.remaining == 0 || ctx.s.tick >= max_ticks {
                break;
            }
        }
        steps
    }

    /// Advances every live cell by one `step` (which may fast-forward
    /// several ticks), in increasing cell index. Returns the number of
    /// cells stepped — 0 means the batch is done. This is the cell-major
    /// reference round; [`step_phase_round`](Self::step_phase_round) is
    /// its phase-major counterpart.
    pub fn step_round<O: SimObserver>(&mut self, observers: &mut [O]) -> usize {
        debug_assert_eq!(observers.len(), self.len());
        let mut stepped = 0;
        for (i, observer) in observers.iter_mut().enumerate() {
            if self.cell_active(i) {
                self.cell_mut(i).step(observer);
                stepped += 1;
            }
        }
        stepped
    }

    /// Partitions every column into its disjoint per-cell windows and
    /// builds one [`CellCtx`] per cell — the phase-major executor's
    /// working set. Built once per run (iterated `split_at_mut`, so the
    /// borrows are provably disjoint); phase passes then index straight
    /// into the returned vector with no per-phase re-slicing.
    fn cell_ctxs(&mut self) -> Vec<CellCtx<'_>> {
        let n = self.configs.len();
        let p = self.p;
        let words = self.words;
        let total_pages = self.total_pages;
        let flat = &*self.flat;
        let chan_off = &self.chan_off;
        let mut cores = self.cores.as_mut_slice();
        let mut issue_bits = self.issue_bits.as_mut_slice();
        let mut issue_next_bits = self.issue_next_bits.as_mut_slice();
        let mut ready_bits = self.ready_bits.as_mut_slice();
        let mut ready_next_bits = self.ready_next_bits.as_mut_slice();
        let mut pages = self.pages.as_mut_slice();
        let mut waiter_next = self.waiter_next.as_mut_slice();
        let mut channel_busy = self.channel_busy.as_mut_slice();
        let mut ctxs = Vec::with_capacity(n);
        let cells = self
            .configs
            .iter()
            .zip(self.plans.iter())
            .zip(self.scalars.iter_mut())
            .zip(self.hbms.iter_mut())
            .zip(self.arbiters.iter_mut())
            .zip(self.metrics.iter_mut())
            .zip(self.cell_bufs.iter_mut());
        for (i, ((((((config, plan), s), hbm), arbiter), metrics), bufs)) in cells.enumerate() {
            let (c, rest) = std::mem::take(&mut cores).split_at_mut(p);
            cores = rest;
            let (ib, rest) = std::mem::take(&mut issue_bits).split_at_mut(words);
            issue_bits = rest;
            let (inb, rest) = std::mem::take(&mut issue_next_bits).split_at_mut(words);
            issue_next_bits = rest;
            let (rb, rest) = std::mem::take(&mut ready_bits).split_at_mut(words);
            ready_bits = rest;
            let (rnb, rest) = std::mem::take(&mut ready_next_bits).split_at_mut(words);
            ready_next_bits = rest;
            let (pg, rest) = std::mem::take(&mut pages).split_at_mut(total_pages);
            pages = rest;
            let (wn, rest) = std::mem::take(&mut waiter_next).split_at_mut(p);
            waiter_next = rest;
            let (cb, rest) =
                std::mem::take(&mut channel_busy).split_at_mut(chan_off[i + 1] - chan_off[i]);
            channel_busy = rest;
            ctxs.push(CellCtx {
                config,
                flat,
                plan,
                hbm,
                arbiter,
                metrics,
                cores: c,
                issue_bits: ib,
                issue_next_bits: inb,
                ready_bits: rb,
                ready_next_bits: rnb,
                pages: pg,
                waiter_next: wn,
                channel_busy: cb,
                fetch_buf: &mut bufs.fetch_buf,
                in_flight: &mut bufs.in_flight,
                s,
            });
        }
        ctxs
    }

    /// The phase-major driver (see module docs): each round opens one
    /// tick on every live cell (fast-forward + fault pre-step + remap),
    /// then runs each of the remaining phases across all cells that
    /// opened a tick before moving to the next phase. `keep_going` is
    /// polled every 64 rounds (vDSO-call amortization for wall budgets);
    /// returning `false` abandons the run cooperatively — unfinished
    /// cells report `truncated`, exactly like the scalar engine.
    fn run_phase_major<O: SimObserver>(
        &mut self,
        observers: &mut [O],
        mut keep_going: impl FnMut() -> bool,
    ) {
        let n = self.configs.len();
        debug_assert_eq!(observers.len(), n);
        if n == 0 {
            return;
        }
        let mut ctxs = self.cell_ctxs();
        // Live worklist: cells that may still execute ticks. Finished or
        // max_ticks-clamped cells drop out permanently and cost nothing.
        let mut live: Vec<u32> = (0..n as u32).collect();
        // (cell, q_eff) for cells that opened a tick this round.
        let mut exec: Vec<(u32, u32)> = Vec::with_capacity(n);
        let mut rounds: u64 = 0;
        loop {
            exec.clear();
            live.retain(|&iu| {
                let i = iu as usize;
                let ctx = &mut ctxs[i];
                if ctx.s.remaining == 0 || ctx.s.tick >= ctx.config.max_ticks {
                    return false;
                }
                match ctx.tick_begin(&mut observers[i]) {
                    Some(q_eff) => {
                        exec.push((iu, q_eff as u32));
                        true
                    }
                    // `None` means finished or clamped at `max_ticks` —
                    // permanently inactive either way.
                    None => false,
                }
            });
            // Every live cell either opened a tick or left the worklist,
            // so an empty exec list means the batch is done.
            if exec.is_empty() {
                return;
            }
            for &(i, _) in &exec {
                ctxs[i as usize].tick_issue(&mut observers[i as usize]);
            }
            for &(i, q_eff) in &exec {
                ctxs[i as usize].tick_evict(q_eff as usize, &mut observers[i as usize]);
            }
            for &(i, _) in &exec {
                ctxs[i as usize].tick_serve(&mut observers[i as usize]);
            }
            // Transfer start/land is the last of the paper's five steps;
            // `tick_end` is per-cell close-out bookkeeping (sampling,
            // worklist swaps), not a cross-cell phase, so it rides the
            // same pass instead of paying a sixth sweep over the batch.
            for &(i, q_eff) in &exec {
                let ctx = &mut ctxs[i as usize];
                ctx.tick_transfer(q_eff as usize, &mut observers[i as usize]);
                ctx.tick_end(q_eff as usize);
            }
            rounds += 1;
            if rounds & 63 == 0 && !keep_going() {
                return;
            }
        }
    }

    /// One phase-major round: every live cell that can open a tick does,
    /// then each phase runs across all of them. Returns the number of
    /// cells that executed a tick — 0 means the batch is done.
    /// Bit-identical to [`step_round`](Self::step_round) per cell (cells
    /// share no mutable state). Test-grade API: it rebuilds the per-cell
    /// column windows on every call; the run loops amortize that across
    /// the whole run.
    pub fn step_phase_round<O: SimObserver>(&mut self, observers: &mut [O]) -> usize {
        debug_assert_eq!(observers.len(), self.len());
        let mut ctxs = self.cell_ctxs();
        let mut exec: Vec<(usize, usize)> = Vec::with_capacity(ctxs.len());
        for (i, ctx) in ctxs.iter_mut().enumerate() {
            if ctx.s.remaining == 0 || ctx.s.tick >= ctx.config.max_ticks {
                continue;
            }
            if let Some(q_eff) = ctx.tick_begin(&mut observers[i]) {
                exec.push((i, q_eff));
            }
        }
        for &(i, _) in &exec {
            ctxs[i].tick_issue(&mut observers[i]);
        }
        for &(i, q_eff) in &exec {
            ctxs[i].tick_evict(q_eff, &mut observers[i]);
        }
        for &(i, _) in &exec {
            ctxs[i].tick_serve(&mut observers[i]);
        }
        for &(i, q_eff) in &exec {
            ctxs[i].tick_transfer(q_eff, &mut observers[i]);
            ctxs[i].tick_end(q_eff);
        }
        exec.len()
    }

    /// Runs every cell to completion (or its `max_ticks`) and reports, in
    /// cell order, through the phase-major executor.
    pub fn run<O: SimObserver>(mut self, observers: &mut [O]) -> Vec<Report> {
        self.run_phase_major(observers, || true);
        self.into_reports()
    }

    /// Like [`run`](Self::run), but through the cell-major reference
    /// executor (single-step rounds). Kept for differential testing —
    /// bit-identical to [`run`](Self::run) by construction.
    pub fn run_cell_major<O: SimObserver>(mut self, observers: &mut [O]) -> Vec<Report> {
        while self.step_round(observers) > 0 {}
        self.into_reports()
    }

    /// Steps per [`step_cell_chunk`](Self::step_cell_chunk) borrow in the
    /// cell-major quiet run loops: large enough that re-slicing the
    /// column windows vanishes from the profile, small enough that the
    /// cells of a batch stay loosely aligned in the shared trace.
    const QUIET_CHUNK: usize = 4096;

    /// Like [`run`](Self::run) with no observers.
    pub fn run_quiet(mut self) -> Vec<Report> {
        self.run_quiet_while(|| true);
        self.into_reports()
    }

    /// Like [`run_quiet`](Self::run_quiet), returning the backing storage
    /// to `scratch` for the next batch on this thread.
    pub fn run_quiet_reusing(mut self, scratch: &mut BatchScratch) -> Vec<Report> {
        self.run_quiet_while(|| true);
        self.into_reports_reusing(scratch)
    }

    /// Observer-free phase-major run that polls `keep_going` every 64
    /// rounds and stops cooperatively when it returns `false` — the hook
    /// wall-clock budgets drive (the budget *policy* stays with the
    /// caller; the engine only honors the poll). Harvest reports
    /// afterwards via [`into_reports`](Self::into_reports) /
    /// [`into_reports_reusing`](Self::into_reports_reusing); cells still
    /// unfinished report `truncated`.
    pub fn run_quiet_while(&mut self, keep_going: impl FnMut() -> bool) {
        let mut observers = vec![NoopObserver; self.len()];
        self.run_phase_major(&mut observers, keep_going);
    }

    /// Cell-major reference analogue of [`run_quiet`](Self::run_quiet):
    /// each pass grants every live cell up to
    /// [`QUIET_CHUNK`](Self::QUIET_CHUNK) steps under one column borrow.
    /// Bit-identical to the phase-major path — cells never interact —
    /// kept as the reference implementation and for honest A/B
    /// measurement in the bench harness.
    pub fn run_quiet_cell_major(mut self) -> Vec<Report> {
        self.run_quiet_cell_major_rounds();
        self.into_reports()
    }

    /// [`run_quiet_cell_major`](Self::run_quiet_cell_major), returning
    /// the backing storage to `scratch`.
    pub fn run_quiet_cell_major_reusing(mut self, scratch: &mut BatchScratch) -> Vec<Report> {
        self.run_quiet_cell_major_rounds();
        self.into_reports_reusing(scratch)
    }

    /// Chunked cell-major round-robin driver (the PR 6 executor).
    fn run_quiet_cell_major_rounds(&mut self) {
        let mut observer = NoopObserver;
        loop {
            let mut stepped = 0;
            for i in 0..self.len() {
                stepped += self.step_cell_chunk(i, &mut observer, Self::QUIET_CHUNK);
            }
            if stepped == 0 {
                return;
            }
        }
    }

    /// Finalizes every cell into its [`Report`], in cell order. A cell
    /// abandoned mid-run (harness wall budget, see module docs) reports
    /// `truncated = true` with the metrics accumulated so far — identical
    /// to the scalar engine's cooperative truncation.
    pub fn into_reports(self) -> Vec<Report> {
        let mut scratch = BatchScratch::default();
        self.into_reports_reusing(&mut scratch)
    }

    /// Like [`into_reports`](Self::into_reports), but harvesting the
    /// batch's backing storage into `scratch` so the next batch built via
    /// [`try_with_scratch`](Self::try_with_scratch) reuses it.
    pub fn into_reports_reusing(self, scratch: &mut BatchScratch) -> Vec<Report> {
        let BatchEngine {
            scalars,
            hbms,
            metrics,
            mut cell_bufs,
            cores,
            issue_bits,
            issue_next_bits,
            ready_bits,
            ready_next_bits,
            pages,
            waiter_next,
            channel_busy,
            ..
        } = self;
        let mut reports = Vec::with_capacity(scalars.len());
        for (i, (s, (hbm, m))) in scalars
            .iter()
            .zip(hbms.into_iter().zip(metrics))
            .enumerate()
        {
            let truncated = s.remaining != 0;
            let makespan = if truncated { s.tick } else { s.makespan };
            cell_bufs[i].hbm = hbm.reclaim();
            reports.push(m.finish(makespan, truncated));
        }
        scratch.cores = cores;
        scratch.issue_bits = issue_bits;
        scratch.issue_next_bits = issue_next_bits;
        scratch.ready_bits = ready_bits;
        scratch.ready_next_bits = ready_next_bits;
        scratch.pages = pages;
        scratch.waiter_next = waiter_next;
        scratch.channel_busy = channel_busy;
        scratch.cells = cell_bufs;
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitration::ArbitrationKind;
    use crate::config::SimBuilder;
    use crate::engine::Engine;
    use crate::error::{ConfigError, SimError};
    use crate::observer::RecordingObserver;
    use crate::replacement::ReplacementKind;
    use crate::workload::Workload;

    fn shared_flat() -> Arc<FlatWorkload> {
        let refs: Vec<u32> = (0..120).map(|i| (i * 13) % 17).collect();
        Arc::new(FlatWorkload::new(&Workload::from_refs(vec![
            refs.clone(),
            refs.iter().map(|r| r + 20).collect(),
            refs,
        ])))
    }

    fn cell(k: usize, q: usize, arb: ArbitrationKind) -> BatchCell {
        BatchCell {
            config: SimConfig {
                hbm_slots: k,
                channels: q,
                arbitration: arb,
                replacement: ReplacementKind::Lru,
                far_latency: 1,
                seed: 11,
                max_ticks: u64::MAX,
            },
            faults: FaultPlan::default(),
        }
    }

    #[test]
    fn empty_batch_is_done_immediately() {
        let engine = BatchEngine::try_new(shared_flat(), &[]).unwrap();
        assert!(engine.is_done());
        assert!(engine.is_empty());
        assert!(engine.run_quiet().is_empty());
    }

    #[test]
    fn batch_of_one_matches_scalar_engine() {
        let flat = shared_flat();
        let c = cell(8, 1, ArbitrationKind::Priority);
        let batch = BatchEngine::try_new(Arc::clone(&flat), std::slice::from_ref(&c)).unwrap();
        let batched = batch.run_quiet().remove(0);
        let scalar = Engine::from_flat(c.config, c.faults, flat).run(&mut NoopObserver);
        assert_eq!(batched.makespan, scalar.makespan);
        assert_eq!(batched.hits, scalar.hits);
        assert_eq!(
            batched.mean_queue_len.to_bits(),
            scalar.mean_queue_len.to_bits()
        );
    }

    #[test]
    fn heterogeneous_batch_matches_scalars_with_events() {
        let flat = shared_flat();
        let cells = vec![
            cell(4, 1, ArbitrationKind::Fifo),
            cell(16, 2, ArbitrationKind::Priority),
            cell(8, 1, ArbitrationKind::DynamicPriority { period: 32 }),
        ];
        let batch = BatchEngine::try_new(Arc::clone(&flat), &cells).unwrap();
        let mut batch_obs: Vec<RecordingObserver> = vec![RecordingObserver::default(); 3];
        let reports = batch.run(&mut batch_obs);
        for (i, c) in cells.iter().enumerate() {
            let mut obs = RecordingObserver::default();
            let scalar =
                Engine::from_flat(c.config, c.faults.clone(), Arc::clone(&flat)).run(&mut obs);
            assert_eq!(reports[i].makespan, scalar.makespan, "cell {i}");
            assert_eq!(reports[i].hits, scalar.hits, "cell {i}");
            assert_eq!(batch_obs[i].serves, obs.serves, "cell {i}");
            assert_eq!(batch_obs[i].fetches, obs.fetches, "cell {i}");
        }
    }

    #[test]
    fn ragged_max_ticks_truncates_only_that_cell() {
        let flat = shared_flat();
        let mut short = cell(4, 1, ArbitrationKind::Fifo);
        short.config.max_ticks = 10;
        let long = cell(4, 1, ArbitrationKind::Fifo);
        let reports = BatchEngine::try_new(flat, &[short, long])
            .unwrap()
            .run_quiet();
        assert!(reports[0].truncated);
        assert_eq!(reports[0].makespan, 10);
        assert!(!reports[1].truncated);
    }

    #[test]
    fn invalid_cell_rejects_whole_batch() {
        let mut bad = cell(4, 1, ArbitrationKind::Fifo);
        bad.config.channels = 0;
        match BatchEngine::try_new(shared_flat(), &[cell(4, 1, ArbitrationKind::Fifo), bad]) {
            Err(err) => assert_eq!(err, SimError::Config(ConfigError::ZeroChannels)),
            Ok(_) => panic!("invalid cell must reject the batch"),
        }
    }

    #[test]
    fn scratch_recycling_is_bit_identical() {
        let flat = shared_flat();
        let cells_a = vec![
            cell(4, 1, ArbitrationKind::Fifo),
            cell(32, 3, ArbitrationKind::Priority),
        ];
        let cells_b = vec![
            cell(6, 2, ArbitrationKind::CyclePriority { period: 16 }),
            cell(12, 1, ArbitrationKind::Fifo),
            cell(3, 1, ArbitrationKind::Priority),
        ];
        let mut scratch = BatchScratch::default();
        // Dirty the scratch with a first differently-shaped batch.
        let first = BatchEngine::try_with_scratch(Arc::clone(&flat), &cells_a, &mut scratch)
            .unwrap()
            .run_quiet_reusing(&mut scratch);
        let fresh_first = BatchEngine::try_new(Arc::clone(&flat), &cells_a)
            .unwrap()
            .run_quiet();
        // Then rebuild from the dirty scratch and compare against fresh.
        let recycled = BatchEngine::try_with_scratch(Arc::clone(&flat), &cells_b, &mut scratch)
            .unwrap()
            .run_quiet_reusing(&mut scratch);
        let fresh = BatchEngine::try_new(flat, &cells_b).unwrap().run_quiet();
        for (a, b) in first
            .iter()
            .zip(&fresh_first)
            .chain(recycled.iter().zip(&fresh))
        {
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.mean_queue_len.to_bits(), b.mean_queue_len.to_bits());
        }
    }

    #[test]
    fn singleton_fallback_scratch_is_reusable() {
        let flat = shared_flat();
        let c = cell(8, 1, ArbitrationKind::Fifo);
        let mut scratch = BatchScratch::default();
        let a = SimBuilder::from_config(c.config)
            .try_build_flat_reusing(&flat, scratch.scalar_mut())
            .unwrap()
            .run_reusing(&mut NoopObserver, scratch.scalar_mut());
        let b = SimBuilder::from_config(c.config)
            .try_build_flat_reusing(&flat, scratch.scalar_mut())
            .unwrap()
            .run_reusing(&mut NoopObserver, scratch.scalar_mut());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.hits, b.hits);
    }
}
