//! Deterministic pseudo-random number generation for the simulator.
//!
//! The simulator must be bit-for-bit reproducible across runs and across
//! versions of external crates, because experiment outputs (EXPERIMENTS.md)
//! are checked against recorded values. We therefore implement our own small
//! PRNG rather than depending on `rand`: a [splitmix64] seeder feeding a
//! [xoshiro256**] generator — the standard pairing recommended by the
//! xoshiro authors. Both are tiny, fast, and pass BigCrush.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256**]: https://prng.di.unimi.it/xoshiro256starstar.c

/// Advances a splitmix64 state and returns the next output.
///
/// Used for seeding [`Xoshiro256`] and for cheap stateless hashing of seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator: 256 bits of state, period 2^256 − 1.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    ///
    /// Any seed (including 0) yields a valid non-degenerate state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` by Lemire's multiply-shift rejection
    /// method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire 2019: unbiased bounded integers without division in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "two seeds should not track each other");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Xoshiro256::seed_from_u64(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 255, 1 << 33] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_hits_all_small_values() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        Xoshiro256::seed_from_u64(0).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "overwhelmingly unlikely");
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut empty: [u8; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [42];
        r.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
