//! The tick engine: a faithful implementation of the simulation loop of
//! paper §3.1.
//!
//! Each tick `t` performs, in order:
//!
//! 1. if `t` is a multiple of the remap period `T`, remap priorities;
//! 2. for each core's current request not resident in HBM, add it to the
//!    DRAM request queue (once);
//! 3. if the queue holds more requests than HBM has empty slots, evict up
//!    to `q` pages by the replacement policy;
//! 4. for each core's current request resident in HBM, serve it;
//! 5. fetch up to `q` queued pages (arbitration order) from DRAM into HBM.
//!
//! A served core issues its next request on the following tick, so an HBM
//! hit has response time exactly 1 and a miss at least 2, as in §2.
//!
//! **One guard beyond the paper's pseudocode:** step 3 never evicts a
//! *pinned* page — one that is some core's current request, already resident
//! and about to be served. The paper's configurations (`k ≥ 1000 ≥ p`) never
//! exercise this corner; without the guard, `k < p` workloads can livelock
//! (a page is fetched, evicted by step 3 of the next tick, re-requested,
//! forever). Pinned pages are unpinned as soon as they are served, which is
//! always the next serve step, so the guard cannot deadlock eviction.
//!
//! The engine runs in O(total references + executed ticks·q) time and
//! O(p + k + pages) space: cores waiting in the DRAM queue cost nothing per
//! tick.
//!
//! **Canonical intra-tick order:** wherever the paper says "for each core"
//! (steps 2 and 4), the engine processes cores in increasing core id, and
//! in-flight transfers land in the order they were started. This pins down
//! a single deterministic trajectory — replacement-policy state, RNG draws
//! and observer event streams included — which the naive
//! [`crate::oracle::OracleEngine`] reproduces independently; the
//! differential suite (`crates/core/tests/differential.rs`) asserts the two
//! engines are bit-identical. Any optimization that reorders these loops
//! must preserve the canonical order or fail that suite.
//!
//! # Hot-path representation
//!
//! All per-page state is keyed by a dense [`PageIndexer`] index instead of
//! a hash of the raw page id: residency lives in the HBM's dense slot
//! table ([`Hbm::with_indexer`]), pin counts in a flat `Vec<u32>`, and
//! fetch waiters in intrusive chains (`waiter_head/tail` per page,
//! `waiter_next` per core — each core waits on at most one page). A miss
//! therefore costs a handful of array writes and no allocation. The engine
//! also mirrors the arbiter's queue length to avoid virtual calls in the
//! eviction predicate.
//!
//! # One step implementation, two engines
//!
//! The whole tick loop (steps 1–5 plus the fast-forward prover below) lives
//! in [`CellCtx`], a borrow structure over *slices* of per-cell state plus
//! one [`CellScalars`] record. [`Engine`] lends its own `Vec`s to a
//! `CellCtx`; the lockstep [`crate::lockstep::BatchEngine`] lends per-cell
//! windows of its structure-of-arrays columns. Both therefore execute
//! literally the same machine code per tick — bit-identity between the
//! scalar and batched paths holds by construction, and the lockstep
//! differential suite (`crates/core/tests/lockstep_differential.rs`)
//! re-proves it against both this engine and the oracle.
//!
//! # Event-driven fast-forward
//!
//! Ticks where nothing can happen — no core issues (both worklists empty),
//! no in-flight transfer lands, no remap fires, the eviction predicate is
//! false, and no fetch can start — are *inert*: executing them only calls
//! `maybe_remap` (which declines), `select` on no capacity (a no-op by the
//! [`crate::arbitration::ArbitrationPolicy`] contract), and samples the
//! unchanged queue length. [`Engine::step`] proves a span of ticks inert by
//! computing the next event tick (next remap via
//! [`crate::arbitration::ArbitrationPolicy::next_remap_at_or_after`], earliest in-flight
//! arrival, earliest channel free time when requests wait) and jumps
//! straight to it, batching the queue-length samples
//! ([`MetricsCollector::sample_queue_len_n`] is integer-exact). The
//! trajectory — every policy decision, RNG draw, event and metric — is
//! bit-identical to the tick-by-tick one; only
//! [`SimObserver::on_tick_start`] callbacks for inert ticks are elided.
//! With `far_latency > 1` this skips most of the makespan outright.

use crate::arbitration::{Arbiter, Request};
use crate::config::SimConfig;
use crate::fault::FaultPlan;
use crate::flat::FlatWorkload;
use crate::hbm::{Hbm, HbmBufs};
use crate::ids::{CoreId, GlobalPage, Tick};
use crate::metrics::{MetricsCollector, Report};
use crate::observer::{FaultEvent, SimObserver};
use crate::workload::Workload;
use std::sync::Arc;

/// Sentinel for "no core" / "no waiter" in the intrusive waiter chains.
pub(crate) const NIL: u32 = u32::MAX;

/// Per-page hot state, packed into one 16-byte record so the issue / land /
/// serve phases of a miss each touch a single cache line instead of three
/// parallel arrays (the dense-index tables are the engine's main working
/// set at paper scale).
#[derive(Debug, Clone, Copy)]
#[repr(align(16))]
pub(crate) struct PageRt {
    /// Pin count: resident requests awaiting a serve (never evicted while
    /// non-zero).
    pub(crate) pinned: u32,
    /// First core of the intrusive waiter chain (`NIL` when no fetch is in
    /// flight for this page).
    pub(crate) waiter_head: u32,
    /// Last core of the chain (appended on coalesce).
    pub(crate) waiter_tail: u32,
}

impl PageRt {
    pub(crate) const EMPTY: PageRt = PageRt {
        pinned: 0,
        waiter_head: NIL,
        waiter_tail: NIL,
    };
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct CoreRt {
    /// Position of the current (unserved) reference in the engine's
    /// flattened trace arrays; `== end` when done.
    pub(crate) pos: usize,
    /// One past this core's last reference in the flattened arrays.
    pub(crate) end: usize,
    /// Tick at which the current request was issued.
    pub(crate) issue_tick: Tick,
    /// Whether the current request went through the DRAM queue.
    pub(crate) was_miss: bool,
    /// The current request's page (set at issue, read at serve).
    pub(crate) cur_page: GlobalPage,
    /// Dense index of `cur_page`.
    pub(crate) cur_idx: u32,
}

impl CoreRt {
    /// Placeholder used when (re)sizing core tables; every field is
    /// overwritten by [`fill_cores`] before the first tick.
    pub(crate) const IDLE: CoreRt = CoreRt {
        pos: 0,
        end: 0,
        issue_tick: 0,
        was_miss: false,
        cur_page: GlobalPage(0),
        cur_idx: 0,
    };
}

/// The scalar (non-buffer) mutable state of one running simulation cell.
///
/// Grouping these in one record is what lets [`Engine`] (owning `Vec`s) and
/// [`crate::lockstep::BatchEngine`] (owning structure-of-arrays columns,
/// one `CellScalars` per cell) drive the *same* tick implementation through
/// [`CellCtx`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct CellScalars {
    /// Population counts of the four worklist bitsets (cheap emptiness
    /// checks for the fast-forward gate).
    pub(crate) issue_count: usize,
    pub(crate) issue_next_count: usize,
    pub(crate) ready_count: usize,
    pub(crate) ready_next_count: usize,
    /// Mirror of `arbiter.len()`, maintained so the hot path never pays a
    /// virtual call for the eviction/fetch predicates.
    pub(crate) queue_len: usize,
    /// The next tick at which the arbiter may remap, per
    /// [`crate::arbitration::ArbitrationPolicy::next_remap_at_or_after`].
    pub(crate) next_remap: Option<Tick>,
    /// `!plan.is_empty()`, hoisted so fault-free runs pay a single branch.
    pub(crate) plan_active: bool,
    /// Channels down at the last executed tick — the delta against the
    /// current tick's outage width drives `FaultEvent::OutageStart`/`End`
    /// emission. Boundary ticks always execute (fast-forward clamps to
    /// them), so the delta is never observed late.
    pub(crate) last_down: usize,
    pub(crate) tick: Tick,
    pub(crate) remaining: usize,
    pub(crate) makespan: Tick,
}

/// (Re)initializes `cores` and the tick-0 issue worklist from `flat`,
/// returning `(issue_count, remaining)`. Shared by the scalar and lockstep
/// engine constructors so both start every cell from literally the same
/// state. `cores` must already hold `flat.cores()` entries and `issue_bits`
/// must be zeroed.
pub(crate) fn fill_cores(
    flat: &FlatWorkload,
    cores: &mut [CoreRt],
    issue_bits: &mut [u64],
) -> (usize, usize) {
    let mut issue_count = 0;
    let mut remaining = 0;
    for (c, rt) in cores.iter_mut().enumerate() {
        let range = flat.core_range(c as CoreId);
        *rt = CoreRt {
            pos: range.start,
            end: range.end,
            ..CoreRt::IDLE
        };
        if range.start < range.end {
            issue_bits[c / 64] |= 1u64 << (c % 64);
            issue_count += 1;
            remaining += 1;
        }
    }
    (issue_count, remaining)
}

/// Borrowed view of one simulation cell's full mutable state — the
/// substrate the tick loop runs on. [`Engine`] builds one over its own
/// fields; [`crate::lockstep::BatchEngine`] builds one per cell over
/// windows of its structure-of-arrays columns, so both engines execute the
/// same step code (see module docs).
pub(crate) struct CellCtx<'a> {
    pub(crate) config: &'a SimConfig,
    pub(crate) flat: &'a FlatWorkload,
    pub(crate) plan: &'a FaultPlan,
    pub(crate) hbm: &'a mut Hbm,
    pub(crate) arbiter: &'a mut Arbiter,
    pub(crate) metrics: &'a mut MetricsCollector,
    pub(crate) cores: &'a mut [CoreRt],
    pub(crate) issue_bits: &'a mut [u64],
    pub(crate) issue_next_bits: &'a mut [u64],
    pub(crate) ready_bits: &'a mut [u64],
    pub(crate) ready_next_bits: &'a mut [u64],
    pub(crate) pages: &'a mut [PageRt],
    pub(crate) waiter_next: &'a mut [u32],
    pub(crate) channel_busy: &'a mut [Tick],
    pub(crate) fetch_buf: &'a mut Vec<Request>,
    pub(crate) in_flight: &'a mut Vec<(Tick, Request)>,
    pub(crate) s: &'a mut CellScalars,
}

impl CellCtx<'_> {
    /// Fast-forwards `s.tick` over a maximal span of inert ticks (see
    /// module docs), clamped to `max_ticks`. Returns `true` when the clamp
    /// was hit, i.e. the caller should not execute a tick.
    fn fast_forward(&mut self) -> bool {
        if self.s.issue_count != 0 || self.s.ready_count != 0 {
            return false;
        }
        let t = self.s.tick;
        // Effective channel count, constant across the whole candidate span
        // because `next` is clamped to the plan's next window boundary.
        let q_eff = if self.s.plan_active {
            let q_eff = self.plan.effective_channels(self.config.channels, t);
            if self.config.channels - q_eff != self.s.last_down {
                // `t` is an outage transition: it must execute so the
                // OutageStart/End event fires on the boundary tick itself.
                return false;
            }
            q_eff
        } else {
            self.config.channels
        };
        // Earliest tick at which anything can happen again.
        let mut next = Tick::MAX;
        if let Some(r) = self.s.next_remap {
            next = next.min(r);
        }
        for &(arrival, _) in self.in_flight.iter() {
            next = next.min(arrival);
        }
        if self.s.queue_len > 0 && q_eff > 0 {
            if self.s.queue_len > self.hbm.free_slots().saturating_sub(self.in_flight.len()) {
                // The eviction predicate already holds: this tick evicts.
                next = next.min(t);
            } else {
                // Room exists, so a fetch starts the moment an *enabled*
                // channel frees (a channel with busy-until `b` is free at
                // `b`; channels past `q_eff` are outage-gated and cannot
                // start transfers this span).
                for &b in &self.channel_busy[..q_eff] {
                    next = next.min(b);
                }
            }
        }
        if self.s.plan_active {
            // Window boundaries change `q_eff` and the outage accounting;
            // they must execute even when otherwise inert (this also keeps
            // `OutageStart`/`End` emission on the boundary tick).
            if let Some(b) = self.plan.next_boundary_after(t) {
                next = next.min(b);
            }
        }
        // With worklists empty and no pending event, every remaining core
        // is queued or in flight, so `next` is finite here in practice;
        // `max_ticks` caps it regardless, matching a truncated run.
        let target = next.min(self.config.max_ticks).max(t);
        if target > t {
            // Each skipped tick ends with the same queue-length sample the
            // executed loop would have taken (integer-exact batching).
            self.metrics
                .sample_queue_len_n(self.s.queue_len, target - t);
            if self.s.plan_active && self.s.queue_len > 0 && q_eff == 0 {
                // Every skipped tick held queued requests against a full
                // outage — the same count the executed loop would record.
                self.metrics.record_outage_blocked_n(target - t);
            }
            self.s.tick = target;
            if target == self.config.max_ticks {
                return true; // truncation boundary: run() stops here
            }
        }
        false
    }

    /// Opens one tick: fast-forward over inert spans, `on_tick_start`, the
    /// fault pre-step, and step 1 (remap). Returns `Some(q_eff)` — this
    /// tick's effective channel count, threaded through the remaining
    /// phases — when a tick executes at `s.tick`, or `None` when the cell
    /// is finished or clamped at `max_ticks` (no tick runs; the cell is
    /// permanently inactive).
    pub(crate) fn tick_begin<O: SimObserver>(&mut self, observer: &mut O) -> Option<usize> {
        if self.s.remaining == 0 {
            return None;
        }
        if self.fast_forward() {
            return None;
        }
        let t = self.s.tick;
        let q = self.config.channels;
        observer.on_tick_start(t);

        // Fault pre-step: resolve this tick's effective channel count and
        // report outage transitions. `last_down` only changes on window
        // boundary ticks, which the fast-forward clamp guarantees execute.
        let q_eff = if self.s.plan_active {
            let q_eff = self.plan.effective_channels(q, t);
            let down = q - q_eff;
            if down > self.s.last_down {
                observer.on_fault(
                    t,
                    FaultEvent::OutageStart {
                        down: down - self.s.last_down,
                    },
                );
            } else if down < self.s.last_down {
                observer.on_fault(
                    t,
                    FaultEvent::OutageEnd {
                        restored: self.s.last_down - down,
                    },
                );
            }
            self.s.last_down = down;
            q_eff
        } else {
            q
        };

        // Step 1: remap priorities on schedule. `next_remap` caches the
        // arbiter's schedule so quiet ticks skip the call entirely.
        if self.s.next_remap.is_some_and(|r| r <= t) {
            if self.arbiter.maybe_remap(t) {
                self.metrics.record_remap();
                observer.on_remap(t);
            }
            self.s.next_remap = self.arbiter.next_remap_at_or_after(t + 1);
        }
        Some(q_eff)
    }

    /// Step 2 of the current tick (only valid between [`Self::tick_begin`]
    /// returning `Some` and [`Self::tick_end`]).
    pub(crate) fn tick_issue<O: SimObserver>(&mut self, observer: &mut O) {
        let t = self.s.tick;
        // Step 2: issue requests; misses enter the DRAM queue. Bit-ascending
        // iteration means "for each core" is increasing core id (canonical
        // order, see module docs).
        debug_assert_eq!(self.s.issue_next_count, 0);
        if self.s.issue_count > 0 {
            self.s.issue_count = 0;
            for w in 0..self.issue_bits.len() {
                let mut word = self.issue_bits[w];
                if word == 0 {
                    continue;
                }
                self.issue_bits[w] = 0;
                while word != 0 {
                    let bit = word & word.wrapping_neg();
                    word ^= bit;
                    let core = (w as u32) * 64 + bit.trailing_zeros();
                    let rt = &mut self.cores[core as usize];
                    let page = GlobalPage(self.flat.page[rt.pos]);
                    let idx = self.flat.idx[rt.pos];
                    rt.cur_page = page;
                    rt.cur_idx = idx;
                    if self.hbm.contains_idx(idx) {
                        rt.was_miss = false;
                        self.pages[idx as usize].pinned += 1;
                        self.ready_bits[w] |= bit;
                        self.s.ready_count += 1;
                    } else {
                        rt.was_miss = true;
                        self.metrics.record_miss();
                        let pg = &mut self.pages[idx as usize];
                        if pg.waiter_head == NIL {
                            pg.waiter_head = core;
                            pg.waiter_tail = core;
                            self.waiter_next[core as usize] = NIL;
                            self.s.queue_len += 1;
                            self.arbiter.enqueue(Request {
                                core,
                                page,
                                arrival: t,
                            });
                            observer.on_enqueue(t, core, page);
                        } else {
                            // Another core already has this fetch in flight
                            // (shared workloads only): coalesce, appending to
                            // the chain so landing preserves insertion order.
                            let tail = pg.waiter_tail;
                            pg.waiter_tail = core;
                            self.waiter_next[tail as usize] = core;
                            self.waiter_next[core as usize] = NIL;
                        }
                    }
                }
            }
        }
    }

    /// Step 3 of the current tick.
    pub(crate) fn tick_evict<O: SimObserver>(&mut self, q_eff: usize, observer: &mut O) {
        let t = self.s.tick;
        // Step 3: evict up to q_eff pages when the queue exceeds free
        // capacity — the machine only makes room for as many fetches as it
        // can start, so an outage shrinks the eviction budget too. Slots
        // are reserved for in-flight transfers so their arrival can never
        // find the HBM full.
        let mut evicted = 0;
        while evicted < q_eff
            && self.s.queue_len > self.hbm.free_slots().saturating_sub(self.in_flight.len())
        {
            let pages = &self.pages;
            match self
                .hbm
                .evict_one_idx(&mut |idx| pages[idx as usize].pinned != 0)
            {
                Some((page, _)) => {
                    evicted += 1;
                    self.metrics.record_eviction();
                    observer.on_evict(t, page);
                }
                None => break, // every resident page is pinned
            }
        }
    }

    /// Step 4 of the current tick.
    pub(crate) fn tick_serve<O: SimObserver>(&mut self, observer: &mut O) {
        let t = self.s.tick;
        // Step 4: serve resident requests in increasing core id (canonical
        // order for free: bit-ascending iteration, regardless of the order
        // in which fetches landed).
        if self.s.ready_count > 0 {
            self.s.ready_count = 0;
            for w in 0..self.ready_bits.len() {
                let mut word = self.ready_bits[w];
                if word == 0 {
                    continue;
                }
                self.ready_bits[w] = 0;
                while word != 0 {
                    let bit = word & word.wrapping_neg();
                    word ^= bit;
                    let core = (w as u32) * 64 + bit.trailing_zeros();
                    let rt = &mut self.cores[core as usize];
                    let page = rt.cur_page;
                    let idx = rt.cur_idx;
                    let response = t - rt.issue_tick + 1;
                    let hit = !rt.was_miss;
                    self.hbm.touch_idx(idx);
                    self.pages[idx as usize].pinned -= 1;
                    self.metrics.record_serve(core, response, hit);
                    observer.on_serve(t, core, page, response, hit);
                    rt.pos += 1;
                    if rt.pos == rt.end {
                        self.s.remaining -= 1;
                        self.s.makespan = self.s.makespan.max(t + 1);
                        self.metrics.record_finish(core, t + 1);
                        observer.on_core_done(t + 1, core);
                    } else {
                        rt.issue_tick = t + 1;
                        self.issue_next_bits[w] |= bit;
                        self.s.issue_next_count += 1;
                    }
                }
            }
        }
    }

    /// Step 5 of the current tick (transfer start + land).
    pub(crate) fn tick_transfer<O: SimObserver>(&mut self, q_eff: usize, observer: &mut O) {
        let t = self.s.tick;
        // Step 5: start up to q transfers on free far channels, then land
        // the transfers that complete this tick. With far_latency = 1 (the
        // paper's model) a transfer started now lands now, so the two
        // phases collapse into the original "fetch up to q pages".
        if self.s.queue_len > 0 && q_eff > 0 {
            // An outage disables the *last* q - q_eff channels for new
            // transfers, so only the `..q_eff` prefix may be claimed;
            // in-flight transfers on disabled channels complete normally.
            let free_channels = self.channel_busy[..q_eff]
                .iter()
                .filter(|&&b| b <= t)
                .count();
            let room = self.hbm.free_slots().saturating_sub(self.in_flight.len());
            let n = free_channels.min(room);
            if n > 0 {
                self.arbiter.select(n, self.fetch_buf);
                self.s.queue_len -= self.fetch_buf.len();
                for i in 0..self.fetch_buf.len() {
                    let req = self.fetch_buf[i];
                    let latency = if self.s.plan_active {
                        let (latency, extra, failures) = self.plan.transfer_time(
                            self.config.far_latency,
                            t,
                            req.core,
                            req.page.0,
                        );
                        if extra > 0 {
                            self.metrics.record_degraded_fetch();
                            observer.on_fault(
                                t,
                                FaultEvent::DegradedFetch {
                                    core: req.core,
                                    page: req.page,
                                    extra_latency: extra,
                                },
                            );
                        }
                        if failures > 0 {
                            self.metrics.record_transient_faults(failures);
                            observer.on_fault(
                                t,
                                FaultEvent::TransientFailure {
                                    core: req.core,
                                    page: req.page,
                                    failures,
                                },
                            );
                        }
                        latency
                    } else {
                        self.config.far_latency
                    };
                    // Claim a free (enabled) channel.
                    for b in self.channel_busy[..q_eff].iter_mut() {
                        if *b <= t {
                            *b = t + latency;
                            break;
                        }
                    }
                    self.in_flight.push((t + latency - 1, req));
                }
            }
        }
        // Land arrivals (including same-tick ones when far_latency == 1) in
        // the order the transfers started — stable `remove`, not
        // `swap_remove`, so HBM insertion order is canonical. The list
        // holds at most q entries, so the shift is negligible.
        if !self.in_flight.is_empty() {
            let mut i = 0;
            while i < self.in_flight.len() {
                let (arrival, req) = self.in_flight[i];
                if arrival > t {
                    i += 1;
                    continue;
                }
                self.in_flight.remove(i);
                // The fetching core is still parked on this reference, so
                // its cached `cur_idx` is the page's dense index — no
                // indexer lookup needed.
                let idx = self.cores[req.core as usize].cur_idx;
                self.hbm.insert_idx(req.page, idx);
                // Promote the whole waiter chain (they all become ready;
                // the serve loop's bit order restores canonical id order).
                let pg = &mut self.pages[idx as usize];
                let mut c = pg.waiter_head;
                debug_assert!(c != NIL, "every queued fetch has waiters");
                pg.waiter_head = NIL;
                pg.waiter_tail = NIL;
                let mut n_waiters = 0u32;
                while c != NIL {
                    self.ready_next_bits[(c / 64) as usize] |= 1u64 << (c % 64);
                    self.s.ready_next_count += 1;
                    n_waiters += 1;
                    c = self.waiter_next[c as usize];
                }
                self.pages[idx as usize].pinned += n_waiters;
                self.metrics.record_fetch();
                observer.on_fetch(t, req.core, req.page);
            }
        }
    }

    /// Closes the current tick: end-of-tick sampling, invariant checks,
    /// worklist swaps, and the tick advance.
    pub(crate) fn tick_end(&mut self, q_eff: usize) {
        let t = self.s.tick;
        self.metrics.sample_queue_len(self.s.queue_len);
        if self.s.plan_active && self.s.queue_len > 0 && q_eff == 0 {
            self.metrics.record_outage_blocked_n(1);
        }
        debug_assert_eq!(self.s.queue_len, self.arbiter.len(), "queue mirror drift");
        #[cfg(debug_assertions)]
        self.hbm.check_invariants();
        // Swap the current/next worklists by content: a borrowed slice
        // cannot trade `Vec` pointers the way the scalar engine historically
        // did, but the current sets are all-zero after their drain loops, so
        // the content swap is bit-identical (and the word span is tiny).
        self.issue_bits.swap_with_slice(self.issue_next_bits);
        self.ready_bits.swap_with_slice(self.ready_next_bits);
        self.s.issue_count = self.s.issue_next_count;
        self.s.issue_next_count = 0;
        self.s.ready_count = self.s.ready_next_count;
        self.s.ready_next_count = 0;
        debug_assert!(self.issue_next_bits.iter().all(|&w| w == 0));
        debug_assert!(self.ready_next_bits.iter().all(|&w| w == 0));
        self.s.tick = t + 1;
    }

    /// Human-readable snapshot of the cell's full mutable state, for the
    /// divergence triage tool ([`crate::triage`]). Large tables are
    /// elided after a prefix — triage wants the neighborhood of the first
    /// divergence, not a core dump.
    pub(crate) fn dump_state(&self) -> String {
        use std::fmt::Write;
        const LIMIT: usize = 16;
        let s = &self.s;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "tick={} remaining={} makespan={} queue_len={} issue={} ready={} \
             issue_next={} ready_next={} last_down={} next_remap={:?}",
            s.tick,
            s.remaining,
            s.makespan,
            s.queue_len,
            s.issue_count,
            s.ready_count,
            s.issue_next_count,
            s.ready_next_count,
            s.last_down,
            s.next_remap,
        );
        let _ = writeln!(
            out,
            "hbm: resident={}/{} free_slots={}",
            self.hbm.len(),
            self.hbm.capacity(),
            self.hbm.free_slots()
        );
        let _ = writeln!(out, "channel_busy={:?}", self.channel_busy);
        let _ = writeln!(out, "in_flight={:?}", self.in_flight);
        for (c, rt) in self.cores.iter().enumerate().take(LIMIT) {
            let _ = writeln!(
                out,
                "core {c}: pos={}/{} issue_tick={} was_miss={} cur_page={} cur_idx={}",
                rt.pos, rt.end, rt.issue_tick, rt.was_miss, rt.cur_page, rt.cur_idx
            );
        }
        if self.cores.len() > LIMIT {
            let _ = writeln!(out, "(+{} more cores)", self.cores.len() - LIMIT);
        }
        let busy_pages = self
            .pages
            .iter()
            .enumerate()
            .filter(|(_, pg)| pg.pinned != 0 || pg.waiter_head != NIL);
        let mut shown = 0usize;
        let mut elided = 0usize;
        for (idx, pg) in busy_pages {
            if shown == LIMIT {
                elided += 1;
                continue;
            }
            shown += 1;
            let mut chain = Vec::new();
            let mut c = pg.waiter_head;
            while c != NIL && chain.len() <= self.waiter_next.len() {
                chain.push(c);
                c = self.waiter_next[c as usize];
            }
            let _ = writeln!(
                out,
                "page idx={idx}: pinned={} waiters={chain:?}",
                pg.pinned
            );
        }
        if elided > 0 {
            let _ = writeln!(out, "(+{elided} more busy pages)");
        }
        out
    }

    /// Executes one tick (steps 1–5). No-op when the cell is done. When
    /// the upcoming span of ticks is provably inert the cell first
    /// fast-forwards across it, so one call may advance `s.tick` by more
    /// than one.
    ///
    /// The body is nothing but the five phase methods in canonical order —
    /// the phase-major batch executor in [`crate::lockstep`] calls the
    /// same methods per phase across all cells, so the two executors are
    /// bit-identical by construction.
    pub(crate) fn step<O: SimObserver>(&mut self, observer: &mut O) {
        if let Some(q_eff) = self.tick_begin(observer) {
            self.tick_issue(observer);
            self.tick_evict(q_eff, observer);
            self.tick_serve(observer);
            self.tick_transfer(q_eff, observer);
            self.tick_end(q_eff);
        }
    }
}

/// Recycled per-cell mutable state, letting sequential simulation cells on
/// a worker thread reuse their buffers (page tables, bitset worklists,
/// waiter chains, queues, HBM slot tables) instead of reallocating them.
///
/// Obtain one with `EngineScratch::default()`, thread it through
/// [`Engine::from_flat_with_scratch`] (or
/// `SimBuilder::try_build_flat_reusing`) and harvest it back with
/// [`Engine::into_report_reusing`] / [`Engine::run_reusing`].
///
/// **Soundness invariant:** construction re-initializes every buffer with
/// `clear()` + `resize(n, v)` (or an equivalent full overwrite), so the
/// engine built from a scratch is bit-identical to one built fresh no
/// matter what the scratch previously held — including a scratch abandoned
/// hollow because the engine owning its buffers panicked mid-run. The
/// sharing differential suite asserts this.
#[derive(Debug, Default)]
pub struct EngineScratch {
    cores: Vec<CoreRt>,
    issue_bits: Vec<u64>,
    issue_next_bits: Vec<u64>,
    ready_bits: Vec<u64>,
    ready_next_bits: Vec<u64>,
    pages: Vec<PageRt>,
    waiter_next: Vec<u32>,
    fetch_buf: Vec<Request>,
    in_flight: Vec<(Tick, Request)>,
    channel_busy: Vec<Tick>,
    hbm: HbmBufs,
}

/// A single in-progress simulation. Most callers use
/// [`crate::SimBuilder::run`]; the engine is public so tests and tools can
/// drive it tick by tick via [`Engine::step`].
pub struct Engine {
    config: SimConfig,
    hbm: Hbm,
    arbiter: Arbiter,
    cores: Vec<CoreRt>,
    /// Immutable pre-indexed workload data — the flattened reference stream
    /// (`flat.page[i]` / `flat.idx[i]`; core `c` owns
    /// `[cores[c].pos, cores[c].end)`) and the dense page index. Shared:
    /// every cell of a sweep reads the same `Arc`, so constructing an
    /// engine no longer re-flattens the traces. The per-tick issue path is
    /// two array loads — no workload call, no index computation.
    flat: Arc<FlatWorkload>,
    /// Worklist bitsets, one bit per core (`word * 64 + bit` = core id).
    /// Word-ascending, bit-ascending iteration visits cores in increasing
    /// id — the canonical order — without any per-tick sort.
    /// `issue_bits`: cores whose next request must be examined this tick
    /// (step 2); `ready_bits`: cores whose current request is resident and
    /// will be served (step 4); the `_next` pair collects work for the
    /// following tick and is swapped in at end of tick.
    issue_bits: Vec<u64>,
    issue_next_bits: Vec<u64>,
    ready_bits: Vec<u64>,
    ready_next_bits: Vec<u64>,
    /// Per-page hot state by dense index: pin count plus the intrusive
    /// waiter chain head/tail (see [`PageRt`]). `waiter_next` chains cores
    /// in insertion order; each core waits on at most one page. For
    /// disjoint workloads every chain has length 1; shared (non-disjoint)
    /// workloads coalesce concurrent requests for the same page into one
    /// fetch.
    pages: Vec<PageRt>,
    waiter_next: Vec<u32>,
    fetch_buf: Vec<Request>,
    /// Fetches currently crossing a far channel: `(arrival_tick, request)`.
    /// Empty whenever `far_latency == 1` outside step 5 (transfers complete
    /// within their starting tick, the paper's model).
    in_flight: Vec<(Tick, Request)>,
    /// Per-channel busy-until tick.
    channel_busy: Vec<Tick>,
    /// The injected fault schedule (empty by default). Outages gate which
    /// prefix of `channel_busy` may start transfers; degradations and
    /// transient failures lengthen individual transfers at start time.
    plan: FaultPlan,
    metrics: MetricsCollector,
    /// Scalar mutable state, grouped so [`Engine::step`] can lend the whole
    /// record to the shared [`CellCtx`] tick implementation.
    s: CellScalars,
}

impl Engine {
    /// Prepares a run of `workload` under `config`. The engine snapshots
    /// the workload into its flattened trace arrays, so it does not borrow
    /// `workload` after construction.
    pub fn new(config: SimConfig, workload: &Workload) -> Self {
        Self::with_faults(config, FaultPlan::default(), workload)
    }

    /// Like [`new`](Self::new), but with an injected [`FaultPlan`]. An
    /// empty plan reproduces the fault-free trajectory exactly — bit for
    /// bit, events and metrics included.
    pub fn with_faults(config: SimConfig, faults: FaultPlan, workload: &Workload) -> Self {
        Self::from_flat(config, faults, Arc::new(FlatWorkload::new(workload)))
    }

    /// Prepares a run over a pre-indexed shared workload. The flattening
    /// and page-index construction already happened inside
    /// [`FlatWorkload::new`], so this is the cheap per-cell entry point for
    /// sweeps: the same `Arc` serves every cell. Bit-identical to
    /// [`with_faults`](Self::with_faults) over `flat.workload()`.
    pub fn from_flat(config: SimConfig, faults: FaultPlan, flat: Arc<FlatWorkload>) -> Self {
        Self::build(config, faults, flat, EngineScratch::default())
    }

    /// Like [`from_flat`](Self::from_flat), but recycling the buffers held
    /// in `scratch` (left hollow; refill it via
    /// [`into_report_reusing`](Self::into_report_reusing) or
    /// [`run_reusing`](Self::run_reusing)). Bit-identical to a fresh
    /// construction regardless of the scratch's prior contents.
    pub fn from_flat_with_scratch(
        config: SimConfig,
        faults: FaultPlan,
        flat: Arc<FlatWorkload>,
        scratch: &mut EngineScratch,
    ) -> Self {
        Self::build(config, faults, flat, std::mem::take(scratch))
    }

    fn build(
        config: SimConfig,
        faults: FaultPlan,
        flat: Arc<FlatWorkload>,
        scratch: EngineScratch,
    ) -> Self {
        let EngineScratch {
            mut cores,
            mut issue_bits,
            mut issue_next_bits,
            mut ready_bits,
            mut ready_next_bits,
            mut pages,
            mut waiter_next,
            mut fetch_buf,
            mut in_flight,
            mut channel_busy,
            hbm: hbm_bufs,
        } = scratch;
        let p = flat.cores();
        let words = p.div_ceil(64);
        // Every buffer is fully re-initialized (clear + resize overwrites
        // all elements) — the EngineScratch soundness invariant.
        issue_bits.clear();
        issue_bits.resize(words, 0);
        issue_next_bits.clear();
        issue_next_bits.resize(words, 0);
        ready_bits.clear();
        ready_bits.resize(words, 0);
        ready_next_bits.clear();
        ready_next_bits.resize(words, 0);
        cores.clear();
        cores.resize(p, CoreRt::IDLE);
        let (issue_count, remaining) = fill_cores(&flat, &mut cores, &mut issue_bits);
        pages.clear();
        pages.resize(flat.total_pages(), PageRt::EMPTY);
        waiter_next.clear();
        waiter_next.resize(p, NIL);
        fetch_buf.clear();
        fetch_buf.reserve(config.channels);
        in_flight.clear();
        in_flight.reserve(config.channels);
        channel_busy.clear();
        channel_busy.resize(config.channels, 0);
        let arbiter = config.arbitration.build_dispatch(p, config.seed);
        let next_remap = arbiter.next_remap_at_or_after(0);
        Engine {
            hbm: Hbm::with_indexer_reusing(
                config.hbm_slots,
                config.replacement,
                config.seed,
                Arc::clone(flat.indexer()),
                hbm_bufs,
            ),
            arbiter,
            cores,
            flat,
            issue_bits,
            issue_next_bits,
            ready_bits,
            ready_next_bits,
            pages,
            waiter_next,
            fetch_buf,
            in_flight,
            channel_busy,
            plan: faults.clone(),
            metrics: MetricsCollector::new(p),
            s: CellScalars {
                issue_count,
                issue_next_count: 0,
                ready_count: 0,
                ready_next_count: 0,
                queue_len: 0,
                next_remap,
                plan_active: !faults.is_empty(),
                last_down: 0,
                tick: 0,
                remaining,
                makespan: 0,
            },
            config,
        }
    }

    /// The tick about to execute (0 before the first [`step`](Self::step)).
    pub fn tick(&self) -> Tick {
        self.s.tick
    }

    /// True once every core has served its whole trace.
    pub fn is_done(&self) -> bool {
        self.s.remaining == 0
    }

    /// Cores still running.
    pub fn cores_remaining(&self) -> usize {
        self.s.remaining
    }

    /// The HBM state (inspection).
    pub fn hbm(&self) -> &Hbm {
        &self.hbm
    }

    /// The injected fault plan (empty unless built via
    /// [`with_faults`](Self::with_faults)).
    pub fn faults(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current priority of `core` under the arbitration policy, if any.
    pub fn priority_of(&self, core: CoreId) -> Option<u32> {
        self.arbiter.priority_of(core)
    }

    /// Human-readable snapshot of the engine's mutable state, for the
    /// divergence triage tool ([`crate::triage`]).
    pub(crate) fn dump_state(&mut self) -> String {
        self.cell_mut().dump_state()
    }

    /// Lends every mutable field to the shared tick implementation.
    fn cell_mut(&mut self) -> CellCtx<'_> {
        CellCtx {
            config: &self.config,
            flat: &self.flat,
            plan: &self.plan,
            hbm: &mut self.hbm,
            arbiter: &mut self.arbiter,
            metrics: &mut self.metrics,
            cores: &mut self.cores,
            issue_bits: &mut self.issue_bits,
            issue_next_bits: &mut self.issue_next_bits,
            ready_bits: &mut self.ready_bits,
            ready_next_bits: &mut self.ready_next_bits,
            pages: &mut self.pages,
            waiter_next: &mut self.waiter_next,
            channel_busy: &mut self.channel_busy,
            fetch_buf: &mut self.fetch_buf,
            in_flight: &mut self.in_flight,
            s: &mut self.s,
        }
    }

    /// Executes one tick (steps 1–5). No-op when [`is_done`](Self::is_done).
    ///
    /// When the upcoming span of ticks is provably inert the engine first
    /// fast-forwards across it (module docs), so one `step` call may
    /// advance [`tick`](Self::tick) by more than one.
    pub fn step<O: SimObserver>(&mut self, observer: &mut O) {
        self.cell_mut().step(observer);
    }

    /// Runs to completion (or `max_ticks`) and reports.
    pub fn run<O: SimObserver>(mut self, observer: &mut O) -> Report {
        while !self.is_done() && self.s.tick < self.config.max_ticks {
            self.step(observer);
        }
        self.into_report()
    }

    /// Finalizes a partially- or fully-stepped engine into a [`Report`].
    /// An engine abandoned mid-run (e.g. by a budgeted sweep harness that
    /// hit its wall-clock cap) reports `truncated = true` with the metrics
    /// accumulated so far — the cooperative alternative to killing a
    /// thread.
    pub fn into_report(self) -> Report {
        let truncated = !self.is_done();
        let makespan = if truncated {
            self.s.tick
        } else {
            self.s.makespan
        };
        self.metrics.finish(makespan, truncated)
    }

    /// A point-in-time [`Report`] of the metrics accumulated so far,
    /// without consuming the engine. Snapshots taken mid-run report
    /// `truncated = true` with `makespan` equal to the current tick —
    /// the same convention as [`into_report`](Self::into_report) — so a
    /// snapshot taken after the final step is byte-identical to the
    /// final report.
    pub fn report_snapshot(&self) -> Report {
        let truncated = !self.is_done();
        let makespan = if truncated {
            self.s.tick
        } else {
            self.s.makespan
        };
        self.metrics.clone().finish(makespan, truncated)
    }

    /// The configured tick budget (`u64::MAX` when unbudgeted).
    pub fn max_ticks(&self) -> Tick {
        self.config.max_ticks
    }

    /// Like [`run`](Self::run), but returning the engine's buffers to
    /// `scratch` for the next cell on this thread.
    pub fn run_reusing<O: SimObserver>(
        mut self,
        observer: &mut O,
        scratch: &mut EngineScratch,
    ) -> Report {
        while !self.is_done() && self.s.tick < self.config.max_ticks {
            self.step(observer);
        }
        self.into_report_reusing(scratch)
    }

    /// Like [`into_report`](Self::into_report), but harvesting the
    /// engine's mutable buffers into `scratch` so the next cell built via
    /// [`from_flat_with_scratch`](Self::from_flat_with_scratch) reuses
    /// them instead of allocating.
    pub fn into_report_reusing(self, scratch: &mut EngineScratch) -> Report {
        let truncated = !self.is_done();
        let makespan = if truncated {
            self.s.tick
        } else {
            self.s.makespan
        };
        let Engine {
            hbm,
            cores,
            issue_bits,
            issue_next_bits,
            ready_bits,
            ready_next_bits,
            pages,
            waiter_next,
            fetch_buf,
            in_flight,
            channel_busy,
            metrics,
            ..
        } = self;
        *scratch = EngineScratch {
            cores,
            issue_bits,
            issue_next_bits,
            ready_bits,
            ready_next_bits,
            pages,
            waiter_next,
            fetch_buf,
            in_flight,
            channel_busy,
            hbm: hbm.reclaim(),
        };
        metrics.finish(makespan, truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitration::ArbitrationKind;
    use crate::config::SimBuilder;
    use crate::observer::{NoopObserver, RecordingObserver};
    use crate::replacement::ReplacementKind;

    fn builder() -> SimBuilder {
        SimBuilder::new()
            .hbm_slots(8)
            .channels(1)
            .replacement(ReplacementKind::Lru)
    }

    #[test]
    fn single_core_single_page_miss_then_hits() {
        // Trace [0, 0, 0]: first reference misses (w=2), rest hit (w=1).
        let w = Workload::from_refs(vec![vec![0, 0, 0]]);
        let mut obs = RecordingObserver::default();
        let r = builder().run_with_observer(&w, &mut obs);
        assert_eq!(r.served, 3);
        assert_eq!(r.hits, 2);
        assert_eq!(r.misses, 1);
        let responses: Vec<u64> = obs.serves.iter().map(|s| s.3).collect();
        assert_eq!(responses, vec![2, 1, 1]);
        // Timeline: t0 enqueue+fetch, t1 serve(w=2), t2 serve, t3 serve.
        assert_eq!(r.makespan, 4);
    }

    #[test]
    fn hit_response_time_is_exactly_one() {
        // Preload by referencing page 0 twice; the second is a hit at w=1.
        let w = Workload::from_refs(vec![vec![0, 0]]);
        let mut obs = RecordingObserver::default();
        builder().run_with_observer(&w, &mut obs);
        assert_eq!(obs.serves[1].3, 1);
        assert!(obs.serves[1].4, "second serve is a hit");
    }

    #[test]
    fn miss_response_time_is_at_least_two() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 3]]);
        let mut obs = RecordingObserver::default();
        let r = builder().run_with_observer(&w, &mut obs);
        assert_eq!(r.misses, 4);
        assert!(obs.serves.iter().all(|s| s.3 >= 2));
    }

    #[test]
    fn two_cores_contend_for_one_channel() {
        // Both cores miss at t0; only one fetch per tick, so the second
        // core's first serve is a tick later.
        let w = Workload::from_refs(vec![vec![0], vec![0]]);
        let mut obs = RecordingObserver::default();
        let r = builder().run_with_observer(&w, &mut obs);
        assert_eq!(r.served, 2);
        assert_eq!(r.misses, 2);
        let mut responses: Vec<u64> = obs.serves.iter().map(|s| s.3).collect();
        responses.sort_unstable();
        assert_eq!(responses, vec![2, 3], "serialized far channel");
        assert_eq!(r.makespan, 3);
    }

    #[test]
    fn q_channels_fetch_in_parallel() {
        // With q = 2 both misses are fetched the same tick.
        let w = Workload::from_refs(vec![vec![0], vec![0]]);
        let r = builder().channels(2).run(&w);
        assert_eq!(r.makespan, 2);
        // With q = 1 it takes 3 (see previous test).
    }

    #[test]
    fn makespan_lower_bound_is_trace_length() {
        // All hits after the first fetch: makespan >= trace length.
        let w = Workload::from_refs(vec![vec![0; 100]]);
        let r = builder().run(&w);
        assert!(r.makespan >= 100);
        assert_eq!(r.served, 100);
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let w = Workload::new();
        let r = builder().run(&w);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.served, 0);
        assert!(!r.truncated);
    }

    #[test]
    fn empty_trace_core_is_skipped() {
        let w = Workload::from_refs(vec![vec![], vec![0, 1]]);
        let r = builder().run(&w);
        assert_eq!(r.served, 2);
        assert_eq!(r.per_core[0].served, 0);
        assert_eq!(r.per_core[0].finish_tick, 0);
    }

    #[test]
    fn max_ticks_truncates() {
        let w = Workload::from_refs(vec![(0..100u32).collect()]);
        let r = builder().max_ticks(10).run(&w);
        assert!(r.truncated);
        assert_eq!(r.makespan, 10);
        assert!(r.served < 100);
    }

    #[test]
    fn priority_serves_core_zero_first() {
        // Two cores, one channel: under static Priority core 0's request is
        // always fetched first.
        let w = Workload::from_refs(vec![vec![0, 1, 2], vec![0, 1, 2]]);
        let mut obs = RecordingObserver::default();
        builder()
            .arbitration(ArbitrationKind::Priority)
            .run_with_observer(&w, &mut obs);
        let first_fetches: Vec<CoreId> = obs.fetches.iter().take(2).map(|f| f.1).collect();
        assert_eq!(first_fetches[0], 0, "core 0 has priority");
    }

    #[test]
    fn fifo_and_priority_agree_on_single_core() {
        // With one core there is no contention: policies must coincide.
        let refs: Vec<u32> = (0..50).map(|i| i % 10).collect();
        let w = Workload::from_refs(vec![refs]);
        let f = builder().arbitration(ArbitrationKind::Fifo).run(&w);
        let p = builder().arbitration(ArbitrationKind::Priority).run(&w);
        assert_eq!(f.makespan, p.makespan);
        assert_eq!(f.hits, p.hits);
    }

    #[test]
    fn eviction_happens_when_hbm_too_small() {
        // 2-slot HBM, trace cycling over 4 pages: every access misses.
        let w = Workload::from_refs(vec![vec![0, 1, 2, 3, 0, 1, 2, 3]]);
        let r = builder().hbm_slots(2).run(&w);
        assert_eq!(r.hits, 0);
        assert!(r.evictions >= 6);
    }

    #[test]
    fn lru_keeps_hot_pages() {
        // Page 0 re-referenced between cold pages stays resident in a
        // 3-slot LRU HBM.
        let w = Workload::from_refs(vec![vec![0, 1, 0, 2, 0, 3, 0, 4, 0]]);
        let r = builder().hbm_slots(3).run(&w);
        let zero_refs = 5u64;
        assert!(
            r.hits >= zero_refs - 1,
            "page 0 should hit after first fetch; hits = {}",
            r.hits
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let refs: Vec<u32> = (0..200).map(|i| (i * 17) % 37).collect();
        let w = Workload::from_refs(vec![refs.clone(), refs]);
        let run = || {
            builder()
                .arbitration(ArbitrationKind::DynamicPriority { period: 16 })
                .seed(99)
                .run(&w)
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.response.inconsistency, b.response.inconsistency);
    }

    #[test]
    fn step_by_step_matches_run() {
        let w = Workload::from_refs(vec![vec![0, 1, 0, 1]]);
        let config = *builder().config();
        let mut engine = Engine::new(config, &w);
        let mut ticks = 0;
        while !engine.is_done() {
            engine.step(&mut NoopObserver);
            ticks += 1;
            assert!(ticks < 1000, "must terminate");
        }
        let r_whole = builder().run(&w);
        assert_eq!(engine.tick(), r_whole.makespan);
    }

    #[test]
    fn k_less_than_p_makes_progress() {
        // 2-slot HBM, 8 cores: the pinning guard must prevent livelock.
        let w = Workload::from_refs(vec![vec![0, 1]; 8]);
        let r = builder().hbm_slots(2).max_ticks(10_000).run(&w);
        assert!(!r.truncated, "k < p workload must still complete");
        assert_eq!(r.served, 16);
    }

    #[test]
    fn remap_events_counted() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 3, 4, 5, 6, 7]; 4]);
        let r = builder()
            .hbm_slots(4)
            .arbitration(ArbitrationKind::DynamicPriority { period: 5 })
            .run(&w);
        assert!(r.remaps >= 1);
    }

    #[test]
    fn report_per_core_finish_ticks_bounded_by_makespan() {
        let w = Workload::from_refs(vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
        let r = builder().run(&w);
        for c in &r.per_core {
            assert!(c.finish_tick <= r.makespan);
        }
        assert_eq!(
            r.per_core.iter().map(|c| c.finish_tick).max().unwrap(),
            r.makespan
        );
    }

    #[test]
    fn hit_rate_consistency() {
        let w = Workload::from_refs(vec![vec![0, 0, 1, 1, 0]; 3]);
        let r = builder().run(&w);
        assert_eq!(r.hits + r.misses, r.served);
        assert!((r.hit_rate - r.hits as f64 / r.served as f64).abs() < 1e-12);
    }

    #[test]
    fn observer_event_counts_match_report() {
        let w = Workload::from_refs(vec![vec![0, 1, 0, 2], vec![0, 3]]);
        let mut obs = RecordingObserver::default();
        let r = builder().run_with_observer(&w, &mut obs);
        assert_eq!(obs.serves.len() as u64, r.served);
        assert_eq!(obs.enqueues.len() as u64, r.misses);
        assert_eq!(
            obs.fetches.len() as u64,
            r.misses,
            "every miss is fetched once"
        );
        assert_eq!(r.fetches, r.misses, "disjoint: fetches == misses");
        assert_eq!(obs.evictions.len() as u64, r.evictions);
        assert_eq!(obs.completions.len(), 2);
    }

    #[test]
    fn fast_forward_skips_idle_far_latency_ticks() {
        // One core, far_latency 10, q = 1: each miss spends 9 inert ticks
        // waiting for the transfer. step() must cover each wait in one call.
        let w = Workload::from_refs(vec![vec![0, 1, 2]]);
        let config = *builder().far_latency(10).config();
        let mut engine = Engine::new(config, &w);
        let mut steps = 0;
        while !engine.is_done() {
            engine.step(&mut NoopObserver);
            steps += 1;
            assert!(steps < 100, "must terminate");
        }
        let makespan = engine.tick();
        assert!(
            steps < makespan,
            "fast-forward must execute fewer steps ({steps}) than ticks ({makespan})"
        );
        // Trajectory must match the same run driven through run().
        let r = builder().far_latency(10).run(&w);
        assert_eq!(r.makespan, makespan);
        assert_eq!(r.misses, 3);
    }

    #[test]
    fn fast_forward_never_skips_a_remap_boundary() {
        // far_latency 25 creates inert spans crossing several remap
        // boundaries (T = 7): every multiple of 7 in range must still fire.
        let period = 7u64;
        let w = Workload::from_refs(vec![vec![0, 1, 2, 3]]);
        let mut obs = RecordingObserver::default();
        let r = builder()
            .far_latency(25)
            .arbitration(ArbitrationKind::DynamicPriority { period })
            .run_with_observer(&w, &mut obs);
        let expected = 1 + (r.makespan - 1) / period; // t = 0, 7, 14, ... < makespan
        assert_eq!(
            r.remaps, expected,
            "every t ≡ 0 (mod {period}) below the makespan must remap"
        );
        for &t in &obs.remaps {
            assert_eq!(t % period, 0, "remap fired off-schedule at {t}");
        }
    }

    #[test]
    fn fast_forward_truncation_matches_tickwise_sampling() {
        // A run truncated mid-flight: the skipped span must contribute the
        // same queue samples as the oracle's tick-by-tick execution.
        let w = Workload::from_refs(vec![vec![0, 1], vec![2, 3, 4]]);
        let config = *builder().far_latency(1000).max_ticks(50).config();
        let fast = Engine::new(config, &w).run(&mut NoopObserver);
        let slow = crate::oracle::OracleEngine::new(config, &w).run(&mut NoopObserver);
        assert!(fast.truncated && slow.truncated);
        assert_eq!(fast.makespan, slow.makespan);
        assert_eq!(
            fast.mean_queue_len.to_bits(),
            slow.mean_queue_len.to_bits(),
            "skipped span must contribute identical samples"
        );
        assert_eq!(fast.max_queue_len, slow.max_queue_len);
    }
}
