//! The tick engine: a faithful implementation of the simulation loop of
//! paper §3.1.
//!
//! Each tick `t` performs, in order:
//!
//! 1. if `t` is a multiple of the remap period `T`, remap priorities;
//! 2. for each core's current request not resident in HBM, add it to the
//!    DRAM request queue (once);
//! 3. if the queue holds more requests than HBM has empty slots, evict up
//!    to `q` pages by the replacement policy;
//! 4. for each core's current request resident in HBM, serve it;
//! 5. fetch up to `q` queued pages (arbitration order) from DRAM into HBM.
//!
//! A served core issues its next request on the following tick, so an HBM
//! hit has response time exactly 1 and a miss at least 2, as in §2.
//!
//! **One guard beyond the paper's pseudocode:** step 3 never evicts a
//! *pinned* page — one that is some core's current request, already resident
//! and about to be served. The paper's configurations (`k ≥ 1000 ≥ p`) never
//! exercise this corner; without the guard, `k < p` workloads can livelock
//! (a page is fetched, evicted by step 3 of the next tick, re-requested,
//! forever). Pinned pages are unpinned as soon as they are served, which is
//! always the next serve step, so the guard cannot deadlock eviction.
//!
//! The engine runs in O(total references + makespan·q) time and O(p + k)
//! space: cores waiting in the DRAM queue cost nothing per tick.
//!
//! **Canonical intra-tick order:** wherever the paper says "for each core"
//! (steps 2 and 4), the engine processes cores in increasing core id, and
//! in-flight transfers land in the order they were started. This pins down
//! a single deterministic trajectory — replacement-policy state, RNG draws
//! and observer event streams included — which the naive
//! [`crate::oracle::OracleEngine`] reproduces independently; the
//! differential suite (`crates/core/tests/differential.rs`) asserts the two
//! engines are bit-identical. Any optimization that reorders these loops
//! must preserve the canonical order or fail that suite.

use crate::arbitration::{ArbitrationPolicy, Request};
use crate::config::SimConfig;
use crate::fxhash::FxHashMap;
use crate::hbm::Hbm;
use crate::ids::{CoreId, Tick};
use crate::metrics::{MetricsCollector, Report};
use crate::observer::SimObserver;
use crate::workload::Workload;

#[derive(Debug, Clone, Copy)]
struct CoreRt {
    /// Index of the current (unserved) reference; `== trace.len()` when done.
    pos: usize,
    /// Tick at which the current request was issued.
    issue_tick: Tick,
    /// Whether the current request went through the DRAM queue.
    was_miss: bool,
}

/// A single in-progress simulation. Most callers use
/// [`crate::SimBuilder::run`]; the engine is public so tests and tools can
/// drive it tick by tick via [`Engine::step`].
pub struct Engine<'w> {
    config: SimConfig,
    workload: &'w Workload,
    hbm: Hbm,
    arbiter: Box<dyn ArbitrationPolicy>,
    cores: Vec<CoreRt>,
    /// Cores whose next request must be examined this tick (step 2).
    need_issue: Vec<CoreId>,
    need_issue_next: Vec<CoreId>,
    /// Cores whose current request is resident and will be served (step 4).
    ready: Vec<CoreId>,
    ready_next: Vec<CoreId>,
    /// Resident pages awaiting a serve, with waiter counts (never evicted).
    pinned: FxHashMap<u64, u32>,
    /// Cores waiting on each in-flight far-channel fetch. For disjoint
    /// workloads every list has length 1; shared (non-disjoint) workloads
    /// coalesce concurrent requests for the same page into one fetch.
    waiters: FxHashMap<u64, Vec<CoreId>>,
    fetch_buf: Vec<Request>,
    /// Fetches currently crossing a far channel: `(arrival_tick, request)`.
    /// Empty whenever `far_latency == 1` outside step 5 (transfers complete
    /// within their starting tick, the paper's model).
    in_flight: Vec<(Tick, Request)>,
    /// Per-channel busy-until tick.
    channel_busy: Vec<Tick>,
    metrics: MetricsCollector,
    tick: Tick,
    remaining: usize,
    makespan: Tick,
}

impl<'w> Engine<'w> {
    /// Prepares a run of `workload` under `config`.
    pub fn new(config: SimConfig, workload: &'w Workload) -> Self {
        let p = workload.cores();
        let mut need_issue = Vec::with_capacity(p);
        let mut cores = Vec::with_capacity(p);
        let mut remaining = 0;
        for c in 0..p {
            let empty = workload.trace(c as CoreId).is_empty();
            cores.push(CoreRt {
                pos: 0,
                issue_tick: 0,
                was_miss: false,
            });
            if !empty {
                need_issue.push(c as CoreId);
                remaining += 1;
            }
        }
        Engine {
            hbm: Hbm::new(config.hbm_slots, config.replacement, config.seed),
            arbiter: config.arbitration.build(p, config.seed),
            cores,
            need_issue,
            need_issue_next: Vec::with_capacity(p),
            ready: Vec::with_capacity(p),
            ready_next: Vec::with_capacity(p),
            pinned: FxHashMap::default(),
            waiters: FxHashMap::default(),
            fetch_buf: Vec::with_capacity(config.channels),
            in_flight: Vec::with_capacity(config.channels),
            channel_busy: vec![0; config.channels],
            metrics: MetricsCollector::new(p),
            tick: 0,
            remaining,
            makespan: 0,
            config,
            workload,
        }
    }

    /// The tick about to execute (0 before the first [`step`](Self::step)).
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// True once every core has served its whole trace.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Cores still running.
    pub fn cores_remaining(&self) -> usize {
        self.remaining
    }

    /// The HBM state (inspection).
    pub fn hbm(&self) -> &Hbm {
        &self.hbm
    }

    /// Current priority of `core` under the arbitration policy, if any.
    pub fn priority_of(&self, core: CoreId) -> Option<u32> {
        self.arbiter.priority_of(core)
    }

    /// Executes one tick (steps 1–5). No-op when [`is_done`](Self::is_done).
    pub fn step<O: SimObserver>(&mut self, observer: &mut O) {
        if self.is_done() {
            return;
        }
        let t = self.tick;
        let q = self.config.channels;
        observer.on_tick_start(t);

        // Step 1: remap priorities on schedule.
        if self.arbiter.maybe_remap(t) {
            self.metrics.record_remap();
            observer.on_remap(t);
        }

        // Step 2: issue requests; misses enter the DRAM queue. The worklist
        // is sorted so "for each core" means increasing core id (canonical
        // order, see module docs).
        debug_assert!(self.need_issue_next.is_empty());
        self.need_issue.sort_unstable();
        for i in 0..self.need_issue.len() {
            let core = self.need_issue[i];
            let rt = &mut self.cores[core as usize];
            let page = self.workload.global_page(core, rt.pos);
            if self.hbm.contains(page) {
                rt.was_miss = false;
                *self.pinned.entry(page.0).or_insert(0) += 1;
                self.ready.push(core);
            } else {
                rt.was_miss = true;
                self.metrics.record_miss();
                match self.waiters.entry(page.0) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        // Another core already has this fetch in flight
                        // (shared workloads only): coalesce.
                        e.get_mut().push(core);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(vec![core]);
                        self.arbiter.enqueue(Request {
                            core,
                            page,
                            arrival: t,
                        });
                        observer.on_enqueue(t, core, page);
                    }
                }
            }
        }
        self.need_issue.clear();

        // Step 3: evict up to q pages when the queue exceeds free capacity.
        // Slots are reserved for in-flight transfers so their arrival can
        // never find the HBM full.
        let mut evicted = 0;
        while evicted < q
            && self.arbiter.len() > self.hbm.free_slots().saturating_sub(self.in_flight.len())
        {
            let pinned = &self.pinned;
            match self.hbm.evict_one(&mut |p| pinned.contains_key(&p.0)) {
                Some(page) => {
                    evicted += 1;
                    self.metrics.record_eviction();
                    observer.on_evict(t, page);
                }
                None => break, // every resident page is pinned
            }
        }

        // Step 4: serve resident requests in increasing core id (canonical
        // order; the list arrives in landing order, which follows fetch
        // order, not id order).
        self.ready.sort_unstable();
        for i in 0..self.ready.len() {
            let core = self.ready[i];
            let rt = &mut self.cores[core as usize];
            let page = self.workload.global_page(core, rt.pos);
            let response = t - rt.issue_tick + 1;
            let hit = !rt.was_miss;
            self.hbm.touch(page);
            match self.pinned.get_mut(&page.0) {
                Some(count) if *count > 1 => *count -= 1,
                _ => {
                    self.pinned.remove(&page.0);
                }
            }
            self.metrics.record_serve(core, response, hit);
            observer.on_serve(t, core, page, response, hit);
            rt.pos += 1;
            if rt.pos == self.workload.trace(core).len() {
                self.remaining -= 1;
                self.makespan = self.makespan.max(t + 1);
                self.metrics.record_finish(core, t + 1);
                observer.on_core_done(t + 1, core);
            } else {
                rt.issue_tick = t + 1;
                self.need_issue_next.push(core);
            }
        }
        self.ready.clear();

        // Step 5: start up to q transfers on free far channels, then land
        // the transfers that complete this tick. With far_latency = 1 (the
        // paper's model) a transfer started now lands now, so the two
        // phases collapse into the original "fetch up to q pages".
        let free_channels = self.channel_busy.iter().filter(|&&b| b <= t).count();
        let room = self.hbm.free_slots().saturating_sub(self.in_flight.len());
        let n = free_channels.min(room);
        self.arbiter.select(n, &mut self.fetch_buf);
        for i in 0..self.fetch_buf.len() {
            let req = self.fetch_buf[i];
            // Claim a free channel.
            for b in self.channel_busy.iter_mut() {
                if *b <= t {
                    *b = t + self.config.far_latency;
                    break;
                }
            }
            self.in_flight.push((t + self.config.far_latency - 1, req));
        }
        // Land arrivals (including same-tick ones when far_latency == 1) in
        // the order the transfers started — stable `remove`, not
        // `swap_remove`, so HBM insertion order is canonical. The list
        // holds at most q entries, so the shift is negligible.
        let mut i = 0;
        while i < self.in_flight.len() {
            let (arrival, req) = self.in_flight[i];
            if arrival > t {
                i += 1;
                continue;
            }
            self.in_flight.remove(i);
            self.hbm.insert(req.page);
            let ws = self
                .waiters
                .remove(&req.page.0)
                .expect("every queued fetch has waiters");
            *self.pinned.entry(req.page.0).or_insert(0) += ws.len() as u32;
            for core in ws {
                self.ready_next.push(core);
            }
            self.metrics.record_fetch();
            observer.on_fetch(t, req.core, req.page);
        }

        self.metrics.sample_queue_len(self.arbiter.len());
        std::mem::swap(&mut self.need_issue, &mut self.need_issue_next);
        std::mem::swap(&mut self.ready, &mut self.ready_next);
        debug_assert!(self.ready_next.is_empty() && self.need_issue_next.is_empty());
        self.tick = t + 1;
    }

    /// Runs to completion (or `max_ticks`) and reports.
    pub fn run<O: SimObserver>(mut self, observer: &mut O) -> Report {
        while !self.is_done() && self.tick < self.config.max_ticks {
            self.step(observer);
        }
        let truncated = !self.is_done();
        let makespan = if truncated { self.tick } else { self.makespan };
        self.metrics.finish(makespan, truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitration::ArbitrationKind;
    use crate::config::SimBuilder;
    use crate::observer::{NoopObserver, RecordingObserver};
    use crate::replacement::ReplacementKind;

    fn builder() -> SimBuilder {
        SimBuilder::new()
            .hbm_slots(8)
            .channels(1)
            .replacement(ReplacementKind::Lru)
    }

    #[test]
    fn single_core_single_page_miss_then_hits() {
        // Trace [0, 0, 0]: first reference misses (w=2), rest hit (w=1).
        let w = Workload::from_refs(vec![vec![0, 0, 0]]);
        let mut obs = RecordingObserver::default();
        let r = builder().run_with_observer(&w, &mut obs);
        assert_eq!(r.served, 3);
        assert_eq!(r.hits, 2);
        assert_eq!(r.misses, 1);
        let responses: Vec<u64> = obs.serves.iter().map(|s| s.3).collect();
        assert_eq!(responses, vec![2, 1, 1]);
        // Timeline: t0 enqueue+fetch, t1 serve(w=2), t2 serve, t3 serve.
        assert_eq!(r.makespan, 4);
    }

    #[test]
    fn hit_response_time_is_exactly_one() {
        // Preload by referencing page 0 twice; the second is a hit at w=1.
        let w = Workload::from_refs(vec![vec![0, 0]]);
        let mut obs = RecordingObserver::default();
        builder().run_with_observer(&w, &mut obs);
        assert_eq!(obs.serves[1].3, 1);
        assert!(obs.serves[1].4, "second serve is a hit");
    }

    #[test]
    fn miss_response_time_is_at_least_two() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 3]]);
        let mut obs = RecordingObserver::default();
        let r = builder().run_with_observer(&w, &mut obs);
        assert_eq!(r.misses, 4);
        assert!(obs.serves.iter().all(|s| s.3 >= 2));
    }

    #[test]
    fn two_cores_contend_for_one_channel() {
        // Both cores miss at t0; only one fetch per tick, so the second
        // core's first serve is a tick later.
        let w = Workload::from_refs(vec![vec![0], vec![0]]);
        let mut obs = RecordingObserver::default();
        let r = builder().run_with_observer(&w, &mut obs);
        assert_eq!(r.served, 2);
        assert_eq!(r.misses, 2);
        let mut responses: Vec<u64> = obs.serves.iter().map(|s| s.3).collect();
        responses.sort_unstable();
        assert_eq!(responses, vec![2, 3], "serialized far channel");
        assert_eq!(r.makespan, 3);
    }

    #[test]
    fn q_channels_fetch_in_parallel() {
        // With q = 2 both misses are fetched the same tick.
        let w = Workload::from_refs(vec![vec![0], vec![0]]);
        let r = builder().channels(2).run(&w);
        assert_eq!(r.makespan, 2);
        // With q = 1 it takes 3 (see previous test).
    }

    #[test]
    fn makespan_lower_bound_is_trace_length() {
        // All hits after the first fetch: makespan >= trace length.
        let w = Workload::from_refs(vec![vec![0; 100]]);
        let r = builder().run(&w);
        assert!(r.makespan >= 100);
        assert_eq!(r.served, 100);
    }

    #[test]
    fn empty_workload_finishes_immediately() {
        let w = Workload::new();
        let r = builder().run(&w);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.served, 0);
        assert!(!r.truncated);
    }

    #[test]
    fn empty_trace_core_is_skipped() {
        let w = Workload::from_refs(vec![vec![], vec![0, 1]]);
        let r = builder().run(&w);
        assert_eq!(r.served, 2);
        assert_eq!(r.per_core[0].served, 0);
        assert_eq!(r.per_core[0].finish_tick, 0);
    }

    #[test]
    fn max_ticks_truncates() {
        let w = Workload::from_refs(vec![(0..100u32).collect()]);
        let r = builder().max_ticks(10).run(&w);
        assert!(r.truncated);
        assert_eq!(r.makespan, 10);
        assert!(r.served < 100);
    }

    #[test]
    fn priority_serves_core_zero_first() {
        // Two cores, one channel: under static Priority core 0's request is
        // always fetched first.
        let w = Workload::from_refs(vec![vec![0, 1, 2], vec![0, 1, 2]]);
        let mut obs = RecordingObserver::default();
        builder()
            .arbitration(ArbitrationKind::Priority)
            .run_with_observer(&w, &mut obs);
        let first_fetches: Vec<CoreId> = obs.fetches.iter().take(2).map(|f| f.1).collect();
        assert_eq!(first_fetches[0], 0, "core 0 has priority");
    }

    #[test]
    fn fifo_and_priority_agree_on_single_core() {
        // With one core there is no contention: policies must coincide.
        let refs: Vec<u32> = (0..50).map(|i| i % 10).collect();
        let w = Workload::from_refs(vec![refs]);
        let f = builder().arbitration(ArbitrationKind::Fifo).run(&w);
        let p = builder().arbitration(ArbitrationKind::Priority).run(&w);
        assert_eq!(f.makespan, p.makespan);
        assert_eq!(f.hits, p.hits);
    }

    #[test]
    fn eviction_happens_when_hbm_too_small() {
        // 2-slot HBM, trace cycling over 4 pages: every access misses.
        let w = Workload::from_refs(vec![vec![0, 1, 2, 3, 0, 1, 2, 3]]);
        let r = builder().hbm_slots(2).run(&w);
        assert_eq!(r.hits, 0);
        assert!(r.evictions >= 6);
    }

    #[test]
    fn lru_keeps_hot_pages() {
        // Page 0 re-referenced between cold pages stays resident in a
        // 3-slot LRU HBM.
        let w = Workload::from_refs(vec![vec![0, 1, 0, 2, 0, 3, 0, 4, 0]]);
        let r = builder().hbm_slots(3).run(&w);
        let zero_refs = 5u64;
        assert!(
            r.hits >= zero_refs - 1,
            "page 0 should hit after first fetch; hits = {}",
            r.hits
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let refs: Vec<u32> = (0..200).map(|i| (i * 17) % 37).collect();
        let w = Workload::from_refs(vec![refs.clone(), refs]);
        let run = || {
            builder()
                .arbitration(ArbitrationKind::DynamicPriority { period: 16 })
                .seed(99)
                .run(&w)
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.response.inconsistency, b.response.inconsistency);
    }

    #[test]
    fn step_by_step_matches_run() {
        let w = Workload::from_refs(vec![vec![0, 1, 0, 1]]);
        let config = *builder().config();
        let mut engine = Engine::new(config, &w);
        let mut ticks = 0;
        while !engine.is_done() {
            engine.step(&mut NoopObserver);
            ticks += 1;
            assert!(ticks < 1000, "must terminate");
        }
        let r_whole = builder().run(&w);
        assert_eq!(engine.tick(), r_whole.makespan);
    }

    #[test]
    fn k_less_than_p_makes_progress() {
        // 2-slot HBM, 8 cores: the pinning guard must prevent livelock.
        let w = Workload::from_refs(vec![vec![0, 1]; 8]);
        let r = builder().hbm_slots(2).max_ticks(10_000).run(&w);
        assert!(!r.truncated, "k < p workload must still complete");
        assert_eq!(r.served, 16);
    }

    #[test]
    fn remap_events_counted() {
        let w = Workload::from_refs(vec![vec![0, 1, 2, 3, 4, 5, 6, 7]; 4]);
        let r = builder()
            .hbm_slots(4)
            .arbitration(ArbitrationKind::DynamicPriority { period: 5 })
            .run(&w);
        assert!(r.remaps >= 1);
    }

    #[test]
    fn report_per_core_finish_ticks_bounded_by_makespan() {
        let w = Workload::from_refs(vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
        let r = builder().run(&w);
        for c in &r.per_core {
            assert!(c.finish_tick <= r.makespan);
        }
        assert_eq!(
            r.per_core.iter().map(|c| c.finish_tick).max().unwrap(),
            r.makespan
        );
    }

    #[test]
    fn hit_rate_consistency() {
        let w = Workload::from_refs(vec![vec![0, 0, 1, 1, 0]; 3]);
        let r = builder().run(&w);
        assert_eq!(r.hits + r.misses, r.served);
        assert!((r.hit_rate - r.hits as f64 / r.served as f64).abs() < 1e-12);
    }

    #[test]
    fn observer_event_counts_match_report() {
        let w = Workload::from_refs(vec![vec![0, 1, 0, 2], vec![0, 3]]);
        let mut obs = RecordingObserver::default();
        let r = builder().run_with_observer(&w, &mut obs);
        assert_eq!(obs.serves.len() as u64, r.served);
        assert_eq!(obs.enqueues.len() as u64, r.misses);
        assert_eq!(
            obs.fetches.len() as u64,
            r.misses,
            "every miss is fetched once"
        );
        assert_eq!(r.fetches, r.misses, "disjoint: fetches == misses");
        assert_eq!(obs.evictions.len() as u64, r.evictions);
        assert_eq!(obs.completions.len(), 2);
    }
}
