//! Deterministic fault injection for the HBM+DRAM model.
//!
//! The paper's machine (§2) is fault-free: `q` far channels that never
//! degrade. Real hybrid-memory hardware is not — channels go down for
//! maintenance windows, links degrade thermally, transfers fail transiently
//! and retry. A [`FaultPlan`] schedules three fault classes against the
//! simulated timeline:
//!
//! * **Outage windows** ([`OutageWindow`]): during `[start, end)` the last
//!   `channels` of the machine's `q` far channels may not *start* new
//!   transfers, so the effective channel count drops to
//!   `q_eff(t) = q - down(t)` (saturating at 0). Transfers already in
//!   flight on a disabled channel complete normally — an outage gates
//!   admission, it does not corrupt data in transit. Step 3's eviction
//!   budget also drops to `q_eff(t)`: the machine can only make room for
//!   as many fetches as it can start.
//! * **Degradation windows** ([`DegradationWindow`]): a fetch *started*
//!   during `[start, end)` takes `far_latency + extra_latency` ticks
//!   (overlapping windows add up). The latency is fixed at start time;
//!   a window ending mid-transfer does not shorten it.
//! * **Transient failures** ([`TransientFaults`]): each transfer attempt
//!   fails independently with probability `fail_prob`, decided by a
//!   deterministic hash of `(plan seed, start tick, core, page, attempt)`.
//!   A failed attempt occupies the channel for the full transfer time and
//!   retries in place; after `max_retries` consecutive failures the next
//!   attempt succeeds unconditionally, so the retry bound is what
//!   guarantees forward progress even at `fail_prob = 1.0`.
//!
//! **Determinism.** A plan is pure data plus pure functions of the tick:
//! the same `(SimConfig, FaultPlan, Workload)` triple produces the same
//! trajectory on every run, every platform, and — the property the
//! differential suite enforces — in both [`crate::Engine`] and
//! [`crate::OracleEngine`], bit for bit. No engine RNG draws are consumed
//! by fault decisions, so adding an empty plan (or a plan whose windows
//! fall after the makespan) leaves the fault-free trajectory untouched.
//!
//! Fault activity is surfaced three ways: per-event observer callbacks
//! ([`crate::observer::SimObserver::on_fault`]), aggregate counters in the
//! report ([`crate::metrics::FaultCounters`]), and — for harnesses — the
//! typed validation errors of [`FaultPlan::validate`].

use crate::error::ConfigError;
use crate::ids::{CoreId, Tick};
use serde::{Deserialize, Serialize};

/// A scheduled far-channel outage: `channels` channels are down (cannot
/// start new transfers) for every tick in `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// First affected tick (inclusive).
    pub start: Tick,
    /// First unaffected tick (exclusive).
    pub end: Tick,
    /// How many channels are down. Values `>= q` take the machine to
    /// `q_eff = 0` (a full outage).
    pub channels: usize,
}

/// A latency-degradation window: fetches started in `[start, end)` take
/// `extra_latency` additional ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationWindow {
    /// First affected tick (inclusive).
    pub start: Tick,
    /// First unaffected tick (exclusive).
    pub end: Tick,
    /// Additional ticks per transfer started inside the window.
    pub extra_latency: u64,
}

/// Transient transfer-failure model: independent per-attempt failures with
/// a hard retry bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientFaults {
    /// Per-attempt failure probability in `[0, 1]`.
    pub fail_prob: f64,
    /// Maximum consecutive failed attempts per transfer; the attempt after
    /// the `max_retries`-th failure always succeeds. Must be `>= 1`.
    pub max_retries: u32,
    /// Seed for the deterministic failure draws (independent of the
    /// engine's policy seed on purpose: the same fault pattern can be
    /// replayed against different policy randomizations).
    pub seed: u64,
}

/// A complete, seedable fault schedule for one simulation run.
///
/// The default plan is empty — [`FaultPlan::is_empty`] — and an empty plan
/// is guaranteed to reproduce the fault-free trajectory exactly.
///
/// ```
/// use hbm_core::{FaultPlan, SimBuilder, Workload};
///
/// let plan = FaultPlan::new()
///     .outage(10, 20, 1)          // one channel down for ticks 10..20
///     .degradation(30, 40, 3)     // +3 ticks per fetch started in 30..40
///     .transient(0.25, 4, 7);     // 25% attempt failures, ≤4 retries
/// plan.validate().unwrap();
///
/// let w = Workload::from_refs(vec![vec![0, 1, 2, 0, 1, 2]]);
/// let report = SimBuilder::new()
///     .hbm_slots(2)
///     .fault_plan(plan)
///     .try_run(&w)
///     .unwrap();
/// assert_eq!(report.served, 6);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled channel outages.
    pub outages: Vec<OutageWindow>,
    /// Scheduled latency degradations.
    pub degradations: Vec<DegradationWindow>,
    /// Transient transfer-failure model, if any.
    pub transient: Option<TransientFaults>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an outage window (builder style).
    pub fn outage(mut self, start: Tick, end: Tick, channels: usize) -> Self {
        self.outages.push(OutageWindow {
            start,
            end,
            channels,
        });
        self
    }

    /// Adds a degradation window (builder style).
    pub fn degradation(mut self, start: Tick, end: Tick, extra_latency: u64) -> Self {
        self.degradations.push(DegradationWindow {
            start,
            end,
            extra_latency,
        });
        self
    }

    /// Sets the transient-failure model (builder style).
    pub fn transient(mut self, fail_prob: f64, max_retries: u32, seed: u64) -> Self {
        self.transient = Some(TransientFaults {
            fail_prob,
            max_retries,
            seed,
        });
        self
    }

    /// True when the plan schedules no faults at all. Engines skip every
    /// fault check on the hot path for empty plans.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.degradations.is_empty() && self.transient.is_none()
    }

    /// Validates the plan, pinpointing the first structurally invalid
    /// entry. Every fault-plan value accepted here produces a terminating,
    /// deterministic simulation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for w in &self.outages {
            if w.start >= w.end {
                return Err(ConfigError::EmptyFaultWindow {
                    start: w.start,
                    end: w.end,
                });
            }
            if w.channels == 0 {
                return Err(ConfigError::ZeroOutageChannels { start: w.start });
            }
        }
        for w in &self.degradations {
            if w.start >= w.end {
                return Err(ConfigError::EmptyFaultWindow {
                    start: w.start,
                    end: w.end,
                });
            }
            if w.extra_latency == 0 {
                return Err(ConfigError::ZeroDegradationLatency { start: w.start });
            }
        }
        if let Some(t) = &self.transient {
            if !t.fail_prob.is_finite() || !(0.0..=1.0).contains(&t.fail_prob) {
                return Err(ConfigError::InvalidFailProbability { value: t.fail_prob });
            }
            if t.max_retries == 0 {
                return Err(ConfigError::ZeroRetryBound);
            }
        }
        Ok(())
    }

    /// Effective far-channel count at tick `t`: `q` minus every overlapping
    /// outage's width, saturating at 0.
    #[inline]
    pub fn effective_channels(&self, q: usize, t: Tick) -> usize {
        let mut down = 0usize;
        for w in &self.outages {
            if w.start <= t && t < w.end {
                down = down.saturating_add(w.channels);
            }
        }
        q.saturating_sub(down)
    }

    /// Extra transfer latency for a fetch *started* at tick `t`
    /// (overlapping degradation windows add).
    #[inline]
    pub fn extra_latency(&self, t: Tick) -> u64 {
        let mut extra = 0u64;
        for w in &self.degradations {
            if w.start <= t && t < w.end {
                extra = extra.saturating_add(w.extra_latency);
            }
        }
        extra
    }

    /// Number of consecutive failed attempts (each a deterministic draw)
    /// for a transfer of `page` to `core` started at tick `t`; at most
    /// `max_retries`. 0 when the plan has no transient model.
    #[inline]
    pub fn transient_failures(&self, t: Tick, core: CoreId, page: u64) -> u32 {
        let Some(tf) = &self.transient else {
            return 0;
        };
        if tf.fail_prob <= 0.0 {
            return 0;
        }
        let mut failures = 0u32;
        while failures < tf.max_retries {
            let draw = mix4(
                tf.seed,
                t,
                ((core as u64) << 32) | (page >> 32),
                page,
                failures as u64,
            );
            // Map the draw to [0, 1) with 53-bit precision (IEEE-exact on
            // every platform, hence identical in both engines).
            let unit = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if unit < tf.fail_prob {
                failures += 1;
            } else {
                break;
            }
        }
        failures
    }

    /// The next tick strictly after `t` at which any window starts or
    /// ends — the engine's fast-forward path must not skip across such a
    /// boundary, because `q_eff` (and the outage accounting) change there.
    pub fn next_boundary_after(&self, t: Tick) -> Option<Tick> {
        let mut next: Option<Tick> = None;
        let mut consider = |b: Tick| {
            if b > t {
                next = Some(next.map_or(b, |n| n.min(b)));
            }
        };
        for w in &self.outages {
            consider(w.start);
            consider(w.end);
        }
        for w in &self.degradations {
            consider(w.start);
            consider(w.end);
        }
        next
    }

    /// Total transfer time of a fetch started at tick `t` for `core` /
    /// `page` under this plan, given the machine's base `far_latency`:
    /// degraded base latency times `1 + failures`. Returns the latency and
    /// the `(extra_latency, failures)` pair for counter/event reporting.
    #[inline]
    pub fn transfer_time(
        &self,
        far_latency: u64,
        t: Tick,
        core: CoreId,
        page: u64,
    ) -> (u64, u64, u32) {
        let extra = self.extra_latency(t);
        let failures = self.transient_failures(t, core, page);
        let base = far_latency.saturating_add(extra);
        (base.saturating_mul(1 + failures as u64), extra, failures)
    }
}

/// SplitMix64-style finalizer chain over five words. Statistically strong
/// enough for Bernoulli draws and, critically, a pure function — the same
/// arguments give the same draw in both engines.
#[inline]
fn mix4(seed: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for w in [a, b, c, d] {
        h = h.wrapping_add(w).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        p.validate().unwrap();
        assert_eq!(p.effective_channels(4, 0), 4);
        assert_eq!(p.extra_latency(123), 0);
        assert_eq!(p.transient_failures(0, 0, 0), 0);
        assert_eq!(p.next_boundary_after(0), None);
        assert_eq!(p.transfer_time(1, 5, 0, 9), (1, 0, 0));
    }

    #[test]
    fn outage_reduces_effective_channels_inside_window_only() {
        let p = FaultPlan::new().outage(10, 20, 1);
        assert_eq!(p.effective_channels(2, 9), 2);
        assert_eq!(p.effective_channels(2, 10), 1);
        assert_eq!(p.effective_channels(2, 19), 1);
        assert_eq!(p.effective_channels(2, 20), 2);
    }

    #[test]
    fn overlapping_outages_stack_and_saturate() {
        let p = FaultPlan::new().outage(0, 100, 1).outage(50, 60, 3);
        assert_eq!(p.effective_channels(2, 10), 1);
        assert_eq!(p.effective_channels(2, 55), 0, "saturates at zero");
    }

    #[test]
    fn degradation_adds_latency_at_start_time() {
        let p = FaultPlan::new().degradation(5, 10, 3).degradation(8, 12, 2);
        assert_eq!(p.extra_latency(4), 0);
        assert_eq!(p.extra_latency(5), 3);
        assert_eq!(p.extra_latency(9), 5, "overlap adds");
        assert_eq!(p.extra_latency(11), 2);
        assert_eq!(p.transfer_time(1, 9, 0, 0).0, 6);
    }

    #[test]
    fn transient_failures_are_deterministic_and_bounded() {
        let p = FaultPlan::new().transient(0.5, 3, 42);
        for t in 0..200u64 {
            let a = p.transient_failures(t, 1, 17);
            let b = p.transient_failures(t, 1, 17);
            assert_eq!(a, b, "same draw twice");
            assert!(a <= 3, "retry bound");
        }
        // Over many draws both outcomes must occur at p = 0.5.
        let sum: u32 = (0..200u64).map(|t| p.transient_failures(t, 1, 17)).sum();
        assert!(sum > 0, "some failures at p = 0.5");
        assert!(sum < 600, "not all-max at p = 0.5");
    }

    #[test]
    fn certain_failure_hits_the_retry_bound_exactly() {
        let p = FaultPlan::new().transient(1.0, 4, 0);
        assert_eq!(p.transient_failures(3, 2, 5), 4);
        assert_eq!(p.transfer_time(2, 3, 2, 5), (10, 0, 4));
    }

    #[test]
    fn zero_probability_never_fails() {
        let p = FaultPlan::new().transient(0.0, 4, 0);
        for t in 0..50 {
            assert_eq!(p.transient_failures(t, 0, t), 0);
        }
    }

    #[test]
    fn boundaries_enumerate_window_edges() {
        let p = FaultPlan::new().outage(10, 20, 1).degradation(15, 30, 2);
        assert_eq!(p.next_boundary_after(0), Some(10));
        assert_eq!(p.next_boundary_after(10), Some(15));
        assert_eq!(p.next_boundary_after(15), Some(20));
        assert_eq!(p.next_boundary_after(20), Some(30));
        assert_eq!(p.next_boundary_after(30), None);
    }

    #[test]
    fn validation_rejects_each_degenerate_form() {
        assert_eq!(
            FaultPlan::new().outage(5, 5, 1).validate(),
            Err(ConfigError::EmptyFaultWindow { start: 5, end: 5 })
        );
        assert_eq!(
            FaultPlan::new().outage(1, 2, 0).validate(),
            Err(ConfigError::ZeroOutageChannels { start: 1 })
        );
        assert_eq!(
            FaultPlan::new().degradation(3, 2, 1).validate(),
            Err(ConfigError::EmptyFaultWindow { start: 3, end: 2 })
        );
        assert_eq!(
            FaultPlan::new().degradation(1, 2, 0).validate(),
            Err(ConfigError::ZeroDegradationLatency { start: 1 })
        );
        assert_eq!(
            FaultPlan::new().transient(1.5, 1, 0).validate(),
            Err(ConfigError::InvalidFailProbability { value: 1.5 })
        );
        assert!(matches!(
            FaultPlan::new().transient(f64::NAN, 1, 0).validate(),
            // NaN compares unequal to itself, so match structurally.
            Err(ConfigError::InvalidFailProbability { value }) if value.is_nan()
        ));
        assert_eq!(
            FaultPlan::new().transient(0.5, 0, 0).validate(),
            Err(ConfigError::ZeroRetryBound)
        );
    }
}
