//! Block-replacement policies for the HBM (paper §1.1, policy 1).
//!
//! The paper's theory combines every far-channel arbitration policy with LRU
//! replacement and notes that "HBM replacement is not the problem": LRU and
//! variants retain their classical guarantees [Sleator–Tarjan '85] in the
//! HBM setting. We implement LRU plus the alternatives the paper names
//! (FIFO, CLOCK) and a Random baseline so the claim can be tested as an
//! ablation (`ablation_replacement` bench).
//!
//! A policy tracks *slot indices* (`0..k`), not pages — the [`crate::hbm::Hbm`]
//! owns the page↔slot mapping. Policies never choose a *pinned* slot: a slot
//! whose page is some core's current request and about to be served this
//! tick. (With the paper's parameters, `k ≥ p`, pinning never matters; it
//! guards the `k < p` corner from livelock. See DESIGN.md §1.)

mod clock;
mod fifo;
mod lru;
mod random;

pub use clock::ClockPolicy;
pub use fifo::FifoPolicy;
pub use lru::LruPolicy;
pub use random::RandomPolicy;

use serde::{Deserialize, Serialize};

/// Which block-replacement policy to run (selectable in [`crate::SimBuilder`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementKind {
    /// Least-recently-used: evict the slot whose page was served longest ago.
    Lru,
    /// First-in-first-out: evict the slot whose page was *fetched* longest
    /// ago, regardless of hits since.
    Fifo,
    /// CLOCK (second-chance): approximate LRU with one reference bit per
    /// slot and a sweeping hand.
    Clock,
    /// Uniform random victim; the no-information baseline.
    Random,
}

impl ReplacementKind {
    /// All kinds, for sweeps and ablations.
    pub const ALL: [ReplacementKind; 4] = [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::Clock,
        ReplacementKind::Random,
    ];

    /// Instantiates the policy for an HBM of `capacity` slots.
    ///
    /// `seed` only matters for [`ReplacementKind::Random`].
    pub fn build(self, capacity: usize, seed: u64) -> Box<dyn ReplacementPolicy> {
        match self {
            ReplacementKind::Lru => Box::new(LruPolicy::new(capacity)),
            ReplacementKind::Fifo => Box::new(FifoPolicy::new(capacity)),
            ReplacementKind::Clock => Box::new(ClockPolicy::new(capacity)),
            ReplacementKind::Random => Box::new(RandomPolicy::new(capacity, seed)),
        }
    }

    /// Instantiates the policy behind the HBM's enum dispatch: LRU — the
    /// paper's default, on the hot path of every experiment — is dispatched
    /// statically so its slab-list operations inline into the HBM calls;
    /// the rest fall back to the trait object. Behavior is identical to
    /// [`build`](Self::build) in every case.
    pub fn build_dispatch(self, capacity: usize, seed: u64) -> Replacer {
        match self {
            ReplacementKind::Lru => Replacer::Lru(LruPolicy::new(capacity)),
            other => Replacer::Other(other.build(capacity, seed)),
        }
    }
}

/// Statically-dispatched replacement-policy handle (see
/// [`ReplacementKind::build_dispatch`]). Forwards every call to the same
/// [`ReplacementPolicy`] implementation the boxed form would use.
pub enum Replacer {
    /// Inlined LRU.
    Lru(LruPolicy),
    /// Any other policy, behind the trait object.
    Other(Box<dyn ReplacementPolicy>),
}

macro_rules! replacer_forward {
    ($self:ident, $p:ident => $e:expr) => {
        match $self {
            Replacer::Lru($p) => $e,
            Replacer::Other($p) => $e,
        }
    };
}

impl Replacer {
    /// See [`ReplacementPolicy::on_insert`].
    #[inline]
    pub fn on_insert(&mut self, slot: u32) {
        replacer_forward!(self, p => p.on_insert(slot))
    }

    /// See [`ReplacementPolicy::on_hit`].
    #[inline]
    pub fn on_hit(&mut self, slot: u32) {
        replacer_forward!(self, p => p.on_hit(slot))
    }

    /// See [`ReplacementPolicy::choose_victim`]. Generic over the pinned
    /// predicate so the LRU arm avoids a virtual call per candidate.
    #[inline]
    pub fn choose_victim<F: FnMut(u32) -> bool + ?Sized>(&mut self, pinned: &mut F) -> Option<u32> {
        match self {
            Replacer::Lru(p) => p.choose_victim_impl(pinned),
            Replacer::Other(p) => p.choose_victim(&mut |slot| pinned(slot)),
        }
    }

    /// See [`ReplacementPolicy::on_evict`].
    #[inline]
    pub fn on_evict(&mut self, slot: u32) {
        replacer_forward!(self, p => p.on_evict(slot))
    }

    /// See [`ReplacementPolicy::kind`].
    #[inline]
    pub fn kind(&self) -> ReplacementKind {
        replacer_forward!(self, p => p.kind())
    }
}

impl std::fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ReplacementKind::Lru => "LRU",
            ReplacementKind::Fifo => "FIFO",
            ReplacementKind::Clock => "CLOCK",
            ReplacementKind::Random => "Random",
        };
        f.write_str(name)
    }
}

/// Bookkeeping interface every replacement policy implements.
///
/// The HBM calls `on_insert` when a page is fetched into a slot, `on_hit`
/// when a resident page is served, `choose_victim` when it must evict, and
/// `on_evict` after the chosen victim (or an externally-chosen slot) leaves.
pub trait ReplacementPolicy: Send {
    /// A page was fetched into `slot`.
    fn on_insert(&mut self, slot: u32);

    /// The page in `slot` was served to its core (an HBM hit).
    fn on_hit(&mut self, slot: u32);

    /// Picks a victim slot among tracked slots for which `pinned` is false.
    ///
    /// Returns `None` if every tracked slot is pinned (the caller then skips
    /// eviction this tick).
    fn choose_victim(&mut self, pinned: &mut dyn FnMut(u32) -> bool) -> Option<u32>;

    /// The page in `slot` was evicted; forget the slot.
    fn on_evict(&mut self, slot: u32);

    /// The kind tag, for reporting.
    fn kind(&self) -> ReplacementKind;
}

#[cfg(test)]
pub(crate) mod policy_tests {
    //! Shared conformance tests run against every policy implementation.
    use super::*;

    fn never(_: u32) -> bool {
        false
    }

    /// Inserting then evicting every slot must visit each slot exactly once.
    pub fn eviction_is_a_permutation(mut p: Box<dyn ReplacementPolicy>, n: u32) {
        for s in 0..n {
            p.on_insert(s);
        }
        let mut victims = Vec::new();
        for _ in 0..n {
            let v = p.choose_victim(&mut never).expect("victim exists");
            p.on_evict(v);
            victims.push(v);
        }
        victims.sort_unstable();
        assert_eq!(victims, (0..n).collect::<Vec<_>>());
        assert!(p.choose_victim(&mut never).is_none(), "policy drained");
    }

    /// A fully pinned policy must decline to evict.
    pub fn respects_pinning(mut p: Box<dyn ReplacementPolicy>, n: u32) {
        for s in 0..n {
            p.on_insert(s);
        }
        assert!(p.choose_victim(&mut |_| true).is_none());
        // Pin all but slot 1: the victim must be 1.
        let v = p.choose_victim(&mut |s| s != 1).expect("one unpinned slot");
        assert_eq!(v, 1);
    }

    #[test]
    fn all_kinds_conform() {
        for kind in ReplacementKind::ALL {
            eviction_is_a_permutation(kind.build(16, 7), 16);
            respects_pinning(kind.build(8, 7), 8);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ReplacementKind::Lru.to_string(), "LRU");
        assert_eq!(ReplacementKind::Clock.to_string(), "CLOCK");
    }
}
