//! First-in-first-out replacement (insertion order, hits ignored).

use super::{ReplacementKind, ReplacementPolicy};
use crate::slab_list::SlabList;

/// FIFO replacement: evict the page fetched longest ago. Unlike
/// [`super::LruPolicy`], hits do not refresh a slot. The paper's Lemma 1
/// transformation supports FIFO as well as LRU precisely because the order
/// list is only touched on misses (Theorem 4).
#[derive(Debug, Clone)]
pub struct FifoPolicy {
    order: SlabList,
}

impl FifoPolicy {
    /// New FIFO bookkeeping for `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        FifoPolicy {
            order: SlabList::new(capacity),
        }
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn on_insert(&mut self, slot: u32) {
        self.order.push_back(slot);
    }

    fn on_hit(&mut self, _slot: u32) {
        // Insertion order is immutable under hits.
    }

    fn choose_victim(&mut self, pinned: &mut dyn FnMut(u32) -> bool) -> Option<u32> {
        let mut cur = self.order.front();
        while let Some(slot) = cur {
            if !pinned(slot) {
                return Some(slot);
            }
            cur = self.order.next(slot);
        }
        None
    }

    fn on_evict(&mut self, slot: u32) {
        self.order.unlink(slot);
    }

    fn kind(&self) -> ReplacementKind {
        ReplacementKind::Fifo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn never(_: u32) -> bool {
        false
    }

    #[test]
    fn hits_do_not_refresh() {
        let mut p = FifoPolicy::new(4);
        p.on_insert(0);
        p.on_insert(1);
        p.on_hit(0);
        p.on_hit(0);
        // Despite the hits, 0 entered first and is evicted first.
        assert_eq!(p.choose_victim(&mut never), Some(0));
    }

    #[test]
    fn eviction_in_insertion_order() {
        let mut p = FifoPolicy::new(4);
        for s in [2u32, 0, 3, 1] {
            p.on_insert(s);
        }
        for expect in [2u32, 0, 3, 1] {
            let v = p.choose_victim(&mut never).unwrap();
            assert_eq!(v, expect);
            p.on_evict(v);
        }
    }
}
