//! Uniform-random replacement, the no-information baseline.

use super::{ReplacementKind, ReplacementPolicy};
use crate::rng::Xoshiro256;

/// Random replacement: evicts a uniformly random tracked, unpinned slot.
///
/// Classical paging theory shows Random is k-competitive like FIFO but
/// without FIFO's pathological adversaries; we keep it as the ablation
/// baseline for the paper's "replacement is not the problem" claim.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    /// Dense vector of tracked slots, for O(1) random pick.
    tracked: Vec<u32>,
    /// slot -> index in `tracked`, or `u32::MAX`.
    pos: Vec<u32>,
    rng: Xoshiro256,
}

impl RandomPolicy {
    /// New random policy; `seed` fixes the victim sequence.
    pub fn new(capacity: usize, seed: u64) -> Self {
        RandomPolicy {
            tracked: Vec::with_capacity(capacity),
            pos: vec![u32::MAX; capacity],
            rng: Xoshiro256::seed_from_u64(seed ^ 0xB10C_4EA1_C0FF_EE00),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn on_insert(&mut self, slot: u32) {
        debug_assert_eq!(self.pos[slot as usize], u32::MAX);
        self.pos[slot as usize] = self.tracked.len() as u32;
        self.tracked.push(slot);
    }

    fn on_hit(&mut self, _slot: u32) {}

    fn choose_victim(&mut self, pinned: &mut dyn FnMut(u32) -> bool) -> Option<u32> {
        if self.tracked.is_empty() {
            return None;
        }
        // Try a handful of random probes, then fall back to a scan so that
        // heavy pinning cannot make selection loop forever.
        for _ in 0..8 {
            let slot = self.tracked[self.rng.gen_index(self.tracked.len())];
            if !pinned(slot) {
                return Some(slot);
            }
        }
        let start = self.rng.gen_index(self.tracked.len());
        for off in 0..self.tracked.len() {
            let slot = self.tracked[(start + off) % self.tracked.len()];
            if !pinned(slot) {
                return Some(slot);
            }
        }
        None
    }

    fn on_evict(&mut self, slot: u32) {
        let i = self.pos[slot as usize];
        debug_assert_ne!(i, u32::MAX);
        let last = *self.tracked.last().unwrap();
        self.tracked.swap_remove(i as usize);
        if last != slot {
            self.pos[last as usize] = i;
        }
        self.pos[slot as usize] = u32::MAX;
    }

    fn kind(&self) -> ReplacementKind {
        ReplacementKind::Random
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn never(_: u32) -> bool {
        false
    }

    #[test]
    fn victims_are_tracked_slots() {
        let mut p = RandomPolicy::new(16, 1);
        for s in [1u32, 5, 9] {
            p.on_insert(s);
        }
        for _ in 0..50 {
            let v = p.choose_victim(&mut never).unwrap();
            assert!([1, 5, 9].contains(&v));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut p = RandomPolicy::new(16, 99);
            for s in 0..16 {
                p.on_insert(s);
            }
            let mut vs = Vec::new();
            for _ in 0..16 {
                let v = p.choose_victim(&mut never).unwrap();
                p.on_evict(v);
                vs.push(v);
            }
            vs
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn pinned_fallback_scan_terminates() {
        let mut p = RandomPolicy::new(8, 3);
        for s in 0..8 {
            p.on_insert(s);
        }
        // Pin everything except slot 6; the fallback scan must find it.
        assert_eq!(p.choose_victim(&mut |s| s != 6), Some(6));
    }

    #[test]
    fn swap_remove_bookkeeping_survives_interleaving() {
        let mut p = RandomPolicy::new(8, 4);
        for s in 0..8 {
            p.on_insert(s);
        }
        p.on_evict(3);
        p.on_evict(7);
        p.on_insert(3);
        for _ in 0..20 {
            let v = p.choose_victim(&mut never).unwrap();
            assert_ne!(v, 7);
        }
    }
}
