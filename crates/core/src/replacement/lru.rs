//! Least-recently-used replacement over a [`SlabList`].

use super::{ReplacementKind, ReplacementPolicy};
use crate::slab_list::SlabList;

/// LRU: the recency list's front is the coldest slot; hits move a slot to
/// the back. Sleator–Tarjan's competitive guarantee carries over to the HBM
/// setting (paper §1.1), which is why LRU is the paper's default.
#[derive(Debug, Clone)]
pub struct LruPolicy {
    order: SlabList,
}

impl LruPolicy {
    /// New LRU bookkeeping for `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        LruPolicy {
            order: SlabList::new(capacity),
        }
    }

    /// Slots from coldest to hottest (test/debug aid).
    pub fn order(&self) -> impl Iterator<Item = u32> + '_ {
        self.order.iter()
    }

    /// [`ReplacementPolicy::choose_victim`] with a statically-dispatched
    /// pinned predicate — the engine's hot eviction path (via
    /// [`crate::replacement::Replacer`]); the trait method delegates here.
    #[inline]
    pub fn choose_victim_impl<F: FnMut(u32) -> bool + ?Sized>(
        &mut self,
        pinned: &mut F,
    ) -> Option<u32> {
        let mut cur = self.order.front();
        while let Some(slot) = cur {
            if !pinned(slot) {
                return Some(slot);
            }
            cur = self.order.next(slot);
        }
        None
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_insert(&mut self, slot: u32) {
        self.order.push_back(slot);
    }

    fn on_hit(&mut self, slot: u32) {
        self.order.move_to_back(slot);
    }

    fn choose_victim(&mut self, pinned: &mut dyn FnMut(u32) -> bool) -> Option<u32> {
        self.choose_victim_impl(pinned)
    }

    fn on_evict(&mut self, slot: u32) {
        self.order.unlink(slot);
    }

    fn kind(&self) -> ReplacementKind {
        ReplacementKind::Lru
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn never(_: u32) -> bool {
        false
    }

    #[test]
    fn evicts_least_recently_hit() {
        let mut p = LruPolicy::new(4);
        for s in 0..3 {
            p.on_insert(s);
        }
        p.on_hit(0); // order: 1, 2, 0
        assert_eq!(p.choose_victim(&mut never), Some(1));
        p.on_hit(1); // order: 2, 0, 1
        assert_eq!(p.choose_victim(&mut never), Some(2));
    }

    #[test]
    fn insert_counts_as_most_recent() {
        let mut p = LruPolicy::new(4);
        p.on_insert(0);
        p.on_hit(0);
        p.on_insert(1); // order: 0, 1
        assert_eq!(p.choose_victim(&mut never), Some(0));
    }

    #[test]
    fn pinned_front_is_skipped() {
        let mut p = LruPolicy::new(4);
        for s in 0..3 {
            p.on_insert(s);
        }
        assert_eq!(p.choose_victim(&mut |s| s == 0), Some(1));
    }

    #[test]
    fn classic_lru_sequence() {
        // Slots stand in for pages A,B,C; access A B C A -> victim is B.
        let mut p = LruPolicy::new(3);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        p.on_hit(0);
        assert_eq!(p.choose_victim(&mut never), Some(1));
    }
}
