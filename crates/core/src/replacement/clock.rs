//! CLOCK (second-chance) replacement.

use super::{ReplacementKind, ReplacementPolicy};

/// CLOCK: a circular sweep with one reference bit per slot. Hits set the
/// bit; the hand clears bits until it finds an unreferenced slot, which it
/// evicts. This approximates LRU at O(1) state per slot, which is why real
/// DRAM-side caches favour it (paper §2 cites CLOCK [36] among practical
/// policies).
#[derive(Debug, Clone)]
pub struct ClockPolicy {
    referenced: Vec<bool>,
    tracked: Vec<bool>,
    hand: usize,
    live: usize,
}

impl ClockPolicy {
    /// New CLOCK bookkeeping for `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        ClockPolicy {
            referenced: vec![false; capacity],
            tracked: vec![false; capacity],
            hand: 0,
            live: 0,
        }
    }

    fn advance(&mut self) {
        self.hand = (self.hand + 1) % self.referenced.len().max(1);
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn on_insert(&mut self, slot: u32) {
        let i = slot as usize;
        debug_assert!(!self.tracked[i]);
        self.tracked[i] = true;
        // A fresh page gets its reference bit set so it survives the first
        // sweep (second-chance semantics).
        self.referenced[i] = true;
        self.live += 1;
    }

    fn on_hit(&mut self, slot: u32) {
        self.referenced[slot as usize] = true;
    }

    fn choose_victim(&mut self, pinned: &mut dyn FnMut(u32) -> bool) -> Option<u32> {
        if self.live == 0 {
            return None;
        }
        // Two full sweeps suffice: the first can clear every reference bit,
        // the second must then find an unreferenced, unpinned slot — unless
        // all live slots are pinned, in which case we give up.
        let n = self.referenced.len();
        let mut unpinned_seen = false;
        for pass in 0..2 * n + 1 {
            let i = self.hand;
            if self.tracked[i] {
                let slot = i as u32;
                if !pinned(slot) {
                    unpinned_seen = true;
                    if self.referenced[i] {
                        self.referenced[i] = false;
                    } else {
                        self.advance();
                        return Some(slot);
                    }
                }
            }
            self.advance();
            if pass == n && !unpinned_seen {
                return None;
            }
        }
        None
    }

    fn on_evict(&mut self, slot: u32) {
        let i = slot as usize;
        debug_assert!(self.tracked[i]);
        self.tracked[i] = false;
        self.referenced[i] = false;
        self.live -= 1;
    }

    fn kind(&self) -> ReplacementKind {
        ReplacementKind::Clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn never(_: u32) -> bool {
        false
    }

    #[test]
    fn unreferenced_evicted_before_referenced() {
        let mut p = ClockPolicy::new(4);
        for s in 0..4 {
            p.on_insert(s);
        }
        // First sweep clears everyone; second sweep would evict 0. Hit 0 to
        // protect it: then 1 is the first unreferenced slot.
        let v = p.choose_victim(&mut never).unwrap();
        p.on_hit(v); // give the chosen one a reference again
        p.on_evict(v); // but the contract is caller evicts what was chosen
        assert!(v < 4);
    }

    #[test]
    fn hit_grants_second_chance() {
        let mut p = ClockPolicy::new(3);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        // Drain reference bits with one victim choice, evict it.
        let first = p.choose_victim(&mut never).unwrap();
        assert_eq!(first, 0, "hand starts at slot 0 after clearing sweep");
        p.on_evict(first);
        // Keep hitting slot 1; slot 2 should be evicted next, not 1.
        p.on_hit(1);
        let second = p.choose_victim(&mut never).unwrap();
        assert_eq!(second, 2);
    }

    #[test]
    fn empty_policy_declines() {
        let mut p = ClockPolicy::new(4);
        assert_eq!(p.choose_victim(&mut never), None);
    }

    #[test]
    fn sparse_tracking_skips_untracked() {
        let mut p = ClockPolicy::new(8);
        p.on_insert(3);
        p.on_insert(6);
        let v = p.choose_victim(&mut never).unwrap();
        assert!(v == 3 || v == 6);
    }
}
