//! The shared HBM: `k` block slots, a residency map, and a replacement
//! policy (paper §2, "the k blocks within the HBM").
//!
//! The HBM is fully associative (Property 3, §3); Corollary 1 of the paper
//! justifies this as asymptotically equivalent to the direct-mapped caches
//! real hardware ships (see the `hbm-assoc` crate for the constructive
//! transformation).

use crate::fxhash::FxHashMap;
use crate::ids::GlobalPage;
use crate::replacement::{ReplacementKind, ReplacementPolicy};

/// The HBM state: slot array, page→slot map, free list, replacement policy.
pub struct Hbm {
    slots: Vec<Option<GlobalPage>>,
    map: FxHashMap<u64, u32>,
    free: Vec<u32>,
    policy: Box<dyn ReplacementPolicy>,
}

impl Hbm {
    /// An HBM with `capacity` slots managed by `kind` (seeded for the
    /// Random policy).
    pub fn new(capacity: usize, kind: ReplacementKind, seed: u64) -> Self {
        assert!(capacity > 0, "HBM must have at least one slot");
        Hbm {
            slots: vec![None; capacity],
            map: FxHashMap::default(),
            free: (0..capacity as u32).rev().collect(),
            policy: kind.build(capacity, seed),
        }
    }

    /// Total slots `k`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Resident page count.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unoccupied slots.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Is `page` resident?
    #[inline]
    pub fn contains(&self, page: GlobalPage) -> bool {
        self.map.contains_key(&page.0)
    }

    /// Marks a resident `page` as just-served (policy hit bookkeeping).
    ///
    /// # Panics
    /// Panics if `page` is not resident.
    pub fn touch(&mut self, page: GlobalPage) {
        let slot = *self.map.get(&page.0).expect("touch of non-resident page");
        self.policy.on_hit(slot);
    }

    /// Inserts `page` into a free slot.
    ///
    /// # Panics
    /// Panics if HBM is full (callers must evict first) or the page is
    /// already resident.
    pub fn insert(&mut self, page: GlobalPage) {
        assert!(!self.contains(page), "page {page} already resident");
        let slot = self.free.pop().expect("insert into full HBM");
        self.slots[slot as usize] = Some(page);
        self.map.insert(page.0, slot);
        self.policy.on_insert(slot);
    }

    /// Evicts the policy's victim among pages for which `pinned(page)` is
    /// false. Returns the evicted page, or `None` if all candidates are
    /// pinned (or HBM is empty).
    pub fn evict_one(&mut self, pinned: &mut dyn FnMut(GlobalPage) -> bool) -> Option<GlobalPage> {
        let slots = &self.slots;
        let victim = self.policy.choose_victim(&mut |slot| {
            let page = slots[slot as usize].expect("policy tracks occupied slots");
            pinned(page)
        })?;
        let page = self.slots[victim as usize].take().expect("victim occupied");
        self.policy.on_evict(victim);
        self.map.remove(&page.0);
        self.free.push(victim);
        Some(page)
    }

    /// Removes a specific resident page (used by the direct-mapped
    /// transformation harness and tests, not by the tick loop).
    pub fn remove(&mut self, page: GlobalPage) -> bool {
        let Some(slot) = self.map.remove(&page.0) else {
            return false;
        };
        self.slots[slot as usize] = None;
        self.policy.on_evict(slot);
        self.free.push(slot);
        true
    }

    /// Iterates resident pages in arbitrary order.
    pub fn resident(&self) -> impl Iterator<Item = GlobalPage> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// The replacement policy kind in use.
    pub fn replacement_kind(&self) -> ReplacementKind {
        self.policy.kind()
    }

    /// Internal consistency check (tests and debug assertions).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert_eq!(self.map.len() + self.free.len(), self.slots.len());
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(p) = s {
                assert_eq!(self.map.get(&p.0), Some(&(i as u32)));
            }
        }
        for f in &self.free {
            assert!(self.slots[*f as usize].is_none());
        }
    }
}

impl std::fmt::Debug for Hbm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hbm")
            .field("capacity", &self.capacity())
            .field("resident", &self.len())
            .field("policy", &self.policy.kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(core: u32, local: u32) -> GlobalPage {
        GlobalPage::new(core, local)
    }

    fn never(_: GlobalPage) -> bool {
        false
    }

    #[test]
    fn insert_lookup_evict_cycle() {
        let mut h = Hbm::new(3, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 2));
        assert!(h.contains(page(0, 1)));
        assert!(!h.contains(page(0, 3)));
        assert_eq!(h.len(), 2);
        assert_eq!(h.free_slots(), 1);
        let v = h.evict_one(&mut never).unwrap();
        assert_eq!(v, page(0, 1), "LRU evicts oldest insert");
        assert!(!h.contains(page(0, 1)));
        h.check_invariants();
    }

    #[test]
    fn lru_touch_changes_victim() {
        let mut h = Hbm::new(3, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 2));
        h.insert(page(0, 3));
        h.touch(page(0, 1));
        assert_eq!(h.evict_one(&mut never).unwrap(), page(0, 2));
        h.check_invariants();
    }

    #[test]
    #[should_panic(expected = "full HBM")]
    fn insert_into_full_panics() {
        let mut h = Hbm::new(1, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 2));
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn duplicate_insert_panics() {
        let mut h = Hbm::new(2, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 1));
    }

    #[test]
    fn pinned_pages_survive_eviction() {
        let mut h = Hbm::new(2, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 2));
        let v = h.evict_one(&mut |p| p == page(0, 1)).unwrap();
        assert_eq!(v, page(0, 2));
        assert!(h.evict_one(&mut |p| p == page(0, 1)).is_none());
    }

    #[test]
    fn remove_specific_page() {
        let mut h = Hbm::new(2, ReplacementKind::Fifo, 0);
        h.insert(page(1, 7));
        assert!(h.remove(page(1, 7)));
        assert!(!h.remove(page(1, 7)));
        assert_eq!(h.free_slots(), 2);
        h.check_invariants();
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut h = Hbm::new(2, ReplacementKind::Lru, 0);
        for i in 0..50 {
            h.insert(page(0, i));
            if h.free_slots() == 0 {
                h.evict_one(&mut never).unwrap();
            }
        }
        h.check_invariants();
        assert_eq!(h.len() + h.free_slots(), 2);
    }

    #[test]
    fn resident_iterates_exactly_the_resident_set() {
        let mut h = Hbm::new(4, ReplacementKind::Clock, 0);
        h.insert(page(0, 1));
        h.insert(page(2, 9));
        let mut got: Vec<_> = h.resident().collect();
        got.sort();
        assert_eq!(got, vec![page(0, 1), page(2, 9)]);
    }

    #[test]
    fn evict_from_empty_is_none() {
        let mut h = Hbm::new(4, ReplacementKind::Random, 1);
        assert!(h.evict_one(&mut never).is_none());
    }

    #[test]
    fn works_with_every_replacement_kind() {
        for kind in ReplacementKind::ALL {
            let mut h = Hbm::new(8, kind, 42);
            for i in 0..8 {
                h.insert(page(0, i));
            }
            for _ in 0..8 {
                assert!(h.evict_one(&mut never).is_some());
            }
            assert!(h.is_empty());
            h.check_invariants();
        }
    }
}
