//! The shared HBM: `k` block slots, a residency map, and a replacement
//! policy (paper §2, "the k blocks within the HBM").
//!
//! The HBM is fully associative (Property 3, §3); Corollary 1 of the paper
//! justifies this as asymptotically equivalent to the direct-mapped caches
//! real hardware ships (see the `hbm-assoc` crate for the constructive
//! transformation).
//!
//! Two residency-map representations share one slot/policy core:
//! [`Hbm::new`] keys residency by a hash map over raw page ids (the
//! reference representation, used by the naive oracle and by callers with
//! an open-ended page universe), while [`Hbm::with_indexer`] keys it by a
//! dense [`PageIndexer`] table (the engine's hot path — residency checks
//! are two array loads). Slot assignment — free-list pop order, policy
//! victim choices — is identical in both modes, so the two representations
//! produce bit-identical trajectories; the differential suite relies on
//! this.

use crate::fxhash::FxHashMap;
use crate::ids::GlobalPage;
use crate::page_index::PageIndexer;
use crate::replacement::{ReplacementKind, Replacer};
use std::sync::Arc;

/// Sentinel in the dense slot table for "not resident".
const NO_SLOT: u32 = u32::MAX;

/// Recycled backing buffers for a dense-mode [`Hbm`], harvested from a
/// finished instance by [`Hbm::reclaim`] and re-armed by
/// [`Hbm::with_indexer_reusing`]. The dominant member is `slot_of`
/// (one `u32` per indexed page); reusing it turns the per-cell cost of a
/// sweep from allocate-and-fault into a plain overwrite.
///
/// Soundness: re-arming always runs `clear()` followed by `resize(n, v)`,
/// which overwrites every element regardless of the buffers' prior
/// contents — a buffer abandoned mid-run (e.g. after a panicking cell)
/// re-arms to exactly the same state as a fresh allocation.
#[derive(Debug, Default)]
pub(crate) struct HbmBufs {
    slot_of: Vec<u32>,
    slots: Vec<Option<GlobalPage>>,
    free: Vec<u32>,
    slot_idx: Vec<u32>,
}

enum PageMap {
    /// Reference representation: raw page id → slot.
    Hash(FxHashMap<u64, u32>),
    /// Dense representation: `slot_of[dense index] = slot` (or `NO_SLOT`).
    Dense {
        slot_of: Vec<u32>,
        indexer: Arc<PageIndexer>,
    },
}

/// The HBM state: slot array, page→slot map, free list, replacement policy.
pub struct Hbm {
    slots: Vec<Option<GlobalPage>>,
    map: PageMap,
    free: Vec<u32>,
    policy: Replacer,
    /// Dense index of each occupied slot's page (dense mode only; unused —
    /// and never read — in hash mode). Lets eviction recover the index
    /// without re-deriving it from the page id.
    slot_idx: Vec<u32>,
}

impl Hbm {
    /// An HBM with `capacity` slots managed by `kind` (seeded for the
    /// Random policy), using the hash residency map.
    pub fn new(capacity: usize, kind: ReplacementKind, seed: u64) -> Self {
        assert!(capacity > 0, "HBM must have at least one slot");
        Hbm {
            slots: vec![None; capacity],
            map: PageMap::Hash(FxHashMap::default()),
            free: (0..capacity as u32).rev().collect(),
            policy: kind.build_dispatch(capacity, seed),
            slot_idx: vec![0; capacity],
        }
    }

    /// An HBM using a dense residency table over `indexer`'s page universe.
    /// Behaviorally identical to [`Hbm::new`] for pages the indexer knows;
    /// inserting a page outside that universe panics.
    pub fn with_indexer(
        capacity: usize,
        kind: ReplacementKind,
        seed: u64,
        indexer: Arc<PageIndexer>,
    ) -> Self {
        assert!(capacity > 0, "HBM must have at least one slot");
        Hbm {
            slots: vec![None; capacity],
            map: PageMap::Dense {
                slot_of: vec![NO_SLOT; indexer.total_pages()],
                indexer,
            },
            free: (0..capacity as u32).rev().collect(),
            policy: kind.build_dispatch(capacity, seed),
            slot_idx: vec![0; capacity],
        }
    }

    /// Like [`Hbm::with_indexer`], but re-arming recycled buffers instead
    /// of allocating. Produces a state indistinguishable from a fresh
    /// construction (see [`HbmBufs`] for the soundness argument).
    pub(crate) fn with_indexer_reusing(
        capacity: usize,
        kind: ReplacementKind,
        seed: u64,
        indexer: Arc<PageIndexer>,
        bufs: HbmBufs,
    ) -> Self {
        assert!(capacity > 0, "HBM must have at least one slot");
        let HbmBufs {
            mut slot_of,
            mut slots,
            mut free,
            mut slot_idx,
        } = bufs;
        slot_of.clear();
        slot_of.resize(indexer.total_pages(), NO_SLOT);
        slots.clear();
        slots.resize(capacity, None);
        free.clear();
        free.extend((0..capacity as u32).rev());
        slot_idx.clear();
        slot_idx.resize(capacity, 0);
        Hbm {
            slots,
            map: PageMap::Dense { slot_of, indexer },
            free,
            policy: kind.build_dispatch(capacity, seed),
            slot_idx,
        }
    }

    /// Harvests this HBM's backing buffers for reuse by a later
    /// [`Hbm::with_indexer_reusing`]. Hash-mode instances yield empty
    /// dense buffers (nothing worth recycling).
    pub(crate) fn reclaim(self) -> HbmBufs {
        let slot_of = match self.map {
            PageMap::Dense { slot_of, .. } => slot_of,
            PageMap::Hash(_) => Vec::new(),
        };
        HbmBufs {
            slot_of,
            slots: self.slots,
            free: self.free,
            slot_idx: self.slot_idx,
        }
    }

    /// Total slots `k`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Resident page count.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when nothing is resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unoccupied slots.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    #[inline]
    fn slot_of(&self, page: GlobalPage) -> Option<u32> {
        match &self.map {
            PageMap::Hash(m) => m.get(&page.0).copied(),
            PageMap::Dense { slot_of, indexer } => {
                let slot = slot_of[indexer.try_index(page)? as usize];
                (slot != NO_SLOT).then_some(slot)
            }
        }
    }

    /// Is `page` resident?
    #[inline]
    pub fn contains(&self, page: GlobalPage) -> bool {
        self.slot_of(page).is_some()
    }

    /// Is the page with dense index `idx` resident? (Dense mode only — the
    /// engine's hot path, where the index is already in hand.)
    #[inline]
    pub fn contains_idx(&self, idx: u32) -> bool {
        match &self.map {
            PageMap::Dense { slot_of, .. } => slot_of[idx as usize] != NO_SLOT,
            PageMap::Hash(_) => panic!("contains_idx requires Hbm::with_indexer"),
        }
    }

    /// Marks a resident `page` as just-served (policy hit bookkeeping).
    ///
    /// # Panics
    /// Panics if `page` is not resident.
    pub fn touch(&mut self, page: GlobalPage) {
        let slot = self.slot_of(page).expect("touch of non-resident page");
        self.policy.on_hit(slot);
    }

    /// Dense-index form of [`touch`](Self::touch).
    #[inline]
    pub fn touch_idx(&mut self, idx: u32) {
        let slot = match &self.map {
            PageMap::Dense { slot_of, .. } => slot_of[idx as usize],
            PageMap::Hash(_) => panic!("touch_idx requires Hbm::with_indexer"),
        };
        debug_assert_ne!(slot, NO_SLOT, "touch of non-resident page");
        self.policy.on_hit(slot);
    }

    /// Inserts `page` into a free slot.
    ///
    /// # Panics
    /// Panics if HBM is full (callers must evict first) or the page is
    /// already resident.
    pub fn insert(&mut self, page: GlobalPage) {
        assert!(!self.contains(page), "page {page} already resident");
        let slot = self.free.pop().expect("insert into full HBM");
        self.slots[slot as usize] = Some(page);
        match &mut self.map {
            PageMap::Hash(m) => {
                m.insert(page.0, slot);
            }
            PageMap::Dense { slot_of, indexer } => {
                let idx = indexer.index(page);
                slot_of[idx as usize] = slot;
                self.slot_idx[slot as usize] = idx;
            }
        }
        self.policy.on_insert(slot);
    }

    /// Dense-index form of [`insert`](Self::insert): `idx` must be the
    /// indexer's index for `page`.
    #[inline]
    pub fn insert_idx(&mut self, page: GlobalPage, idx: u32) {
        let slot = self.free.pop().expect("insert into full HBM");
        self.slots[slot as usize] = Some(page);
        match &mut self.map {
            PageMap::Dense { slot_of, .. } => {
                debug_assert_eq!(slot_of[idx as usize], NO_SLOT, "page already resident");
                slot_of[idx as usize] = slot;
            }
            PageMap::Hash(_) => panic!("insert_idx requires Hbm::with_indexer"),
        }
        self.slot_idx[slot as usize] = idx;
        self.policy.on_insert(slot);
    }

    fn unmap(&mut self, page: GlobalPage) {
        match &mut self.map {
            PageMap::Hash(m) => {
                m.remove(&page.0);
            }
            PageMap::Dense { slot_of, indexer } => {
                slot_of[indexer.index(page) as usize] = NO_SLOT;
            }
        }
    }

    /// Evicts the policy's victim among pages for which `pinned(page)` is
    /// false. Returns the evicted page, or `None` if all candidates are
    /// pinned (or HBM is empty). Generic so the hot LRU path dispatches the
    /// predicate statically.
    pub fn evict_one<F: FnMut(GlobalPage) -> bool + ?Sized>(
        &mut self,
        pinned: &mut F,
    ) -> Option<GlobalPage> {
        let slots = &self.slots;
        let victim = self.policy.choose_victim(&mut |slot| {
            let page = slots[slot as usize].expect("policy tracks occupied slots");
            pinned(page)
        })?;
        let page = self.slots[victim as usize].take().expect("victim occupied");
        self.policy.on_evict(victim);
        self.unmap(page);
        self.free.push(victim);
        Some(page)
    }

    /// Dense-index form of [`evict_one`](Self::evict_one): the pinned
    /// predicate receives the victim candidate's dense index (no page-id
    /// lookup on the hot path), and the evicted page is returned with its
    /// index. Dense mode only; identical victim choice to `evict_one`.
    pub fn evict_one_idx<F: FnMut(u32) -> bool>(
        &mut self,
        pinned: &mut F,
    ) -> Option<(GlobalPage, u32)> {
        let slot_idx = &self.slot_idx;
        let victim = self
            .policy
            .choose_victim(&mut |slot| pinned(slot_idx[slot as usize]))?;
        let page = self.slots[victim as usize].take().expect("victim occupied");
        self.policy.on_evict(victim);
        let idx = self.slot_idx[victim as usize];
        match &mut self.map {
            PageMap::Dense { slot_of, .. } => slot_of[idx as usize] = NO_SLOT,
            PageMap::Hash(_) => panic!("evict_one_idx requires Hbm::with_indexer"),
        }
        self.free.push(victim);
        Some((page, idx))
    }

    /// Removes a specific resident page (used by the direct-mapped
    /// transformation harness and tests, not by the tick loop).
    pub fn remove(&mut self, page: GlobalPage) -> bool {
        let Some(slot) = self.slot_of(page) else {
            return false;
        };
        self.slots[slot as usize] = None;
        self.policy.on_evict(slot);
        self.unmap(page);
        self.free.push(slot);
        true
    }

    /// Iterates resident pages in arbitrary order.
    pub fn resident(&self) -> impl Iterator<Item = GlobalPage> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// The replacement policy kind in use.
    pub fn replacement_kind(&self) -> ReplacementKind {
        self.policy.kind()
    }

    /// Internal consistency check (tests and debug assertions).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mapped = match &self.map {
            PageMap::Hash(m) => m.len(),
            PageMap::Dense { slot_of, .. } => slot_of.iter().filter(|&&s| s != NO_SLOT).count(),
        };
        assert_eq!(mapped + self.free.len(), self.slots.len());
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(p) = s {
                assert_eq!(self.slot_of(*p), Some(i as u32));
            }
        }
        for f in &self.free {
            assert!(self.slots[*f as usize].is_none());
        }
    }
}

impl std::fmt::Debug for Hbm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hbm")
            .field("capacity", &self.capacity())
            .field("resident", &self.len())
            .field("policy", &self.policy.kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn page(core: u32, local: u32) -> GlobalPage {
        GlobalPage::new(core, local)
    }

    fn never(_: GlobalPage) -> bool {
        false
    }

    #[test]
    fn insert_lookup_evict_cycle() {
        let mut h = Hbm::new(3, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 2));
        assert!(h.contains(page(0, 1)));
        assert!(!h.contains(page(0, 3)));
        assert_eq!(h.len(), 2);
        assert_eq!(h.free_slots(), 1);
        let v = h.evict_one(&mut never).unwrap();
        assert_eq!(v, page(0, 1), "LRU evicts oldest insert");
        assert!(!h.contains(page(0, 1)));
        h.check_invariants();
    }

    #[test]
    fn lru_touch_changes_victim() {
        let mut h = Hbm::new(3, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 2));
        h.insert(page(0, 3));
        h.touch(page(0, 1));
        assert_eq!(h.evict_one(&mut never).unwrap(), page(0, 2));
        h.check_invariants();
    }

    #[test]
    #[should_panic(expected = "full HBM")]
    fn insert_into_full_panics() {
        let mut h = Hbm::new(1, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 2));
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn duplicate_insert_panics() {
        let mut h = Hbm::new(2, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 1));
    }

    #[test]
    fn pinned_pages_survive_eviction() {
        let mut h = Hbm::new(2, ReplacementKind::Lru, 0);
        h.insert(page(0, 1));
        h.insert(page(0, 2));
        let v = h.evict_one(&mut |p| p == page(0, 1)).unwrap();
        assert_eq!(v, page(0, 2));
        assert!(h.evict_one(&mut |p| p == page(0, 1)).is_none());
    }

    #[test]
    fn remove_specific_page() {
        let mut h = Hbm::new(2, ReplacementKind::Fifo, 0);
        h.insert(page(1, 7));
        assert!(h.remove(page(1, 7)));
        assert!(!h.remove(page(1, 7)));
        assert_eq!(h.free_slots(), 2);
        h.check_invariants();
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut h = Hbm::new(2, ReplacementKind::Lru, 0);
        for i in 0..50 {
            h.insert(page(0, i));
            if h.free_slots() == 0 {
                h.evict_one(&mut never).unwrap();
            }
        }
        h.check_invariants();
        assert_eq!(h.len() + h.free_slots(), 2);
    }

    #[test]
    fn resident_iterates_exactly_the_resident_set() {
        let mut h = Hbm::new(4, ReplacementKind::Clock, 0);
        h.insert(page(0, 1));
        h.insert(page(2, 9));
        let mut got: Vec<_> = h.resident().collect();
        got.sort();
        assert_eq!(got, vec![page(0, 1), page(2, 9)]);
    }

    #[test]
    fn evict_from_empty_is_none() {
        let mut h = Hbm::new(4, ReplacementKind::Random, 1);
        assert!(h.evict_one(&mut never).is_none());
    }

    #[test]
    fn works_with_every_replacement_kind() {
        for kind in ReplacementKind::ALL {
            let mut h = Hbm::new(8, kind, 42);
            for i in 0..8 {
                h.insert(page(0, i));
            }
            for _ in 0..8 {
                assert!(h.evict_one(&mut never).is_some());
            }
            assert!(h.is_empty());
            h.check_invariants();
        }
    }

    /// Replays the same operation sequence through both residency-map
    /// representations and asserts identical observable behavior — the
    /// property the engine/oracle differential suite builds on.
    #[test]
    fn dense_mode_matches_hash_mode() {
        let w = Workload::from_refs(vec![(0..6u32).collect(), (0..6u32).collect()]);
        let indexer = Arc::new(PageIndexer::for_workload(&w));
        for kind in ReplacementKind::ALL {
            let mut hash = Hbm::new(4, kind, 7);
            let mut dense = Hbm::with_indexer(4, kind, 7, Arc::clone(&indexer));
            let refs: Vec<GlobalPage> = (0..24)
                .map(|i| GlobalPage::new(i % 2, (i * 5 + 1) % 6))
                .collect();
            for &g in &refs {
                assert_eq!(hash.contains(g), dense.contains(g), "{kind:?} contains {g}");
                let idx = indexer.index(g);
                assert_eq!(dense.contains(g), dense.contains_idx(idx));
                if hash.contains(g) {
                    hash.touch(g);
                    dense.touch_idx(idx);
                } else {
                    if hash.free_slots() == 0 {
                        let vh = hash.evict_one(&mut never);
                        let vd = dense.evict_one(&mut never);
                        assert_eq!(vh, vd, "{kind:?} victim");
                    }
                    hash.insert(g);
                    dense.insert_idx(g, idx);
                }
                hash.check_invariants();
                dense.check_invariants();
            }
            assert_eq!(hash.len(), dense.len());
            let mut rh: Vec<_> = hash.resident().collect();
            let mut rd: Vec<_> = dense.resident().collect();
            rh.sort();
            rd.sort();
            assert_eq!(rh, rd, "{kind:?} resident sets");
        }
    }

    #[test]
    fn dense_mode_generic_api_still_works() {
        let w = Workload::from_refs(vec![vec![0, 1, 2]]);
        let indexer = Arc::new(PageIndexer::for_workload(&w));
        let mut h = Hbm::with_indexer(2, ReplacementKind::Lru, 0, indexer);
        h.insert(page(0, 0));
        assert!(h.contains(page(0, 0)));
        assert!(!h.contains(page(0, 2)));
        // Pages outside the indexed universe are simply non-resident.
        assert!(!h.contains(page(9, 9)));
        assert!(!h.remove(page(9, 9)));
        h.touch(page(0, 0));
        assert!(h.remove(page(0, 0)));
        h.check_invariants();
    }
}
