//! An intrusive doubly-linked list stored in a slab of fixed capacity.
//!
//! This is the recency/insertion-order structure behind the LRU, FIFO, and
//! CLOCK replacement policies ([`crate::replacement`]) and mirrors the
//! "doubly-linked list which allows us to simulate LRU or FIFO" of the
//! paper's Lemma 1 proof. All operations are O(1); nodes are addressed by
//! slot index rather than pointer, so the structure is `Copy`-friendly,
//! cache-dense, and trivially serializable.
//!
//! Slot indices are managed by the caller (the HBM slot array) — the list
//! only maintains prev/next order among *linked* slots. Unlinked slots are
//! simply absent from the order.

/// Sentinel meaning "no slot".
pub const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    prev: u32,
    next: u32,
    linked: bool,
}

/// Doubly-linked list over slot indices `0..capacity`.
///
/// Front = least-recently-used / first-in; back = most-recently-used /
/// last-in. The replacement policies define the semantics; the list just
/// keeps order.
#[derive(Debug, Clone)]
pub struct SlabList {
    nodes: Vec<Node>,
    head: u32,
    tail: u32,
    len: usize,
}

impl SlabList {
    /// Creates an empty list with room for `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity < NIL as usize, "capacity must fit in u32");
        SlabList {
            nodes: vec![
                Node {
                    prev: NIL,
                    next: NIL,
                    linked: false
                };
                capacity
            ],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slot is linked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// The front slot (eviction candidate for LRU/FIFO), or `None` if empty.
    #[inline]
    pub fn front(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    /// The back slot (most recent), or `None` if empty.
    #[inline]
    pub fn back(&self) -> Option<u32> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Whether `slot` is currently linked.
    #[inline]
    pub fn contains(&self, slot: u32) -> bool {
        self.nodes[slot as usize].linked
    }

    /// The slot after `slot` towards the back, or `None`.
    #[inline]
    pub fn next(&self, slot: u32) -> Option<u32> {
        debug_assert!(self.contains(slot));
        let n = self.nodes[slot as usize].next;
        (n != NIL).then_some(n)
    }

    /// Links `slot` at the back (most-recent end).
    ///
    /// # Panics
    /// Panics in debug builds if `slot` is already linked.
    pub fn push_back(&mut self, slot: u32) {
        let i = slot as usize;
        debug_assert!(!self.nodes[i].linked, "slot {slot} already linked");
        self.nodes[i] = Node {
            prev: self.tail,
            next: NIL,
            linked: true,
        };
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.len += 1;
    }

    /// Links `slot` at the front (least-recent end).
    pub fn push_front(&mut self, slot: u32) {
        let i = slot as usize;
        debug_assert!(!self.nodes[i].linked, "slot {slot} already linked");
        self.nodes[i] = Node {
            prev: NIL,
            next: self.head,
            linked: true,
        };
        if self.head != NIL {
            self.nodes[self.head as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
        self.len += 1;
    }

    /// Unlinks `slot` from wherever it is.
    ///
    /// # Panics
    /// Panics in debug builds if `slot` is not linked.
    pub fn unlink(&mut self, slot: u32) {
        let i = slot as usize;
        debug_assert!(self.nodes[i].linked, "slot {slot} not linked");
        let Node { prev, next, .. } = self.nodes[i];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[i] = Node {
            prev: NIL,
            next: NIL,
            linked: false,
        };
        self.len -= 1;
    }

    /// Unlinks the front slot and returns it.
    pub fn pop_front(&mut self) -> Option<u32> {
        let h = self.front()?;
        self.unlink(h);
        Some(h)
    }

    /// Moves `slot` to the back (marks it most recent). O(1).
    pub fn move_to_back(&mut self, slot: u32) {
        if self.tail == slot {
            return;
        }
        self.unlink(slot);
        self.push_back(slot);
    }

    /// Moves `slot` to the front. O(1).
    pub fn move_to_front(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    /// Iterates slots from front to back.
    pub fn iter(&self) -> SlabListIter<'_> {
        SlabListIter {
            list: self,
            cur: self.head,
        }
    }
}

/// Front-to-back iterator over a [`SlabList`].
pub struct SlabListIter<'a> {
    list: &'a SlabList,
    cur: u32,
}

impl Iterator for SlabListIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NIL {
            return None;
        }
        let out = self.cur;
        self.cur = self.list.nodes[self.cur as usize].next;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(l: &SlabList) -> Vec<u32> {
        l.iter().collect()
    }

    #[test]
    fn push_back_preserves_order() {
        let mut l = SlabList::new(8);
        for s in [3, 1, 4, 1 + 4, 2] {
            l.push_back(s);
        }
        assert_eq!(collect(&l), vec![3, 1, 4, 5, 2]);
        assert_eq!(l.front(), Some(3));
        assert_eq!(l.back(), Some(2));
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn push_front_reverses_order() {
        let mut l = SlabList::new(4);
        for s in 0..4 {
            l.push_front(s);
        }
        assert_eq!(collect(&l), vec![3, 2, 1, 0]);
    }

    #[test]
    fn unlink_middle_front_back() {
        let mut l = SlabList::new(8);
        for s in 0..5 {
            l.push_back(s);
        }
        l.unlink(2); // middle
        assert_eq!(collect(&l), vec![0, 1, 3, 4]);
        l.unlink(0); // front
        assert_eq!(collect(&l), vec![1, 3, 4]);
        l.unlink(4); // back
        assert_eq!(collect(&l), vec![1, 3]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn move_to_back_acts_like_lru_touch() {
        let mut l = SlabList::new(4);
        for s in 0..4 {
            l.push_back(s);
        }
        l.move_to_back(1);
        assert_eq!(collect(&l), vec![0, 2, 3, 1]);
        l.move_to_back(1); // already back: no-op
        assert_eq!(collect(&l), vec![0, 2, 3, 1]);
        l.move_to_back(0);
        assert_eq!(collect(&l), vec![2, 3, 1, 0]);
    }

    #[test]
    fn move_to_front_demotes() {
        let mut l = SlabList::new(4);
        for s in 0..3 {
            l.push_back(s);
        }
        l.move_to_front(2);
        assert_eq!(collect(&l), vec![2, 0, 1]);
        l.move_to_front(2);
        assert_eq!(collect(&l), vec![2, 0, 1]);
    }

    #[test]
    fn pop_front_drains_in_order() {
        let mut l = SlabList::new(4);
        for s in [2, 0, 3] {
            l.push_back(s);
        }
        assert_eq!(l.pop_front(), Some(2));
        assert_eq!(l.pop_front(), Some(0));
        assert_eq!(l.pop_front(), Some(3));
        assert_eq!(l.pop_front(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn single_element_edge_cases() {
        let mut l = SlabList::new(2);
        l.push_back(1);
        assert_eq!(l.front(), l.back());
        l.move_to_back(1);
        l.move_to_front(1);
        assert_eq!(collect(&l), vec![1]);
        l.unlink(1);
        assert!(l.is_empty());
        assert_eq!(l.front(), None);
        assert_eq!(l.back(), None);
    }

    #[test]
    fn relink_after_unlink() {
        let mut l = SlabList::new(4);
        l.push_back(0);
        l.push_back(1);
        l.unlink(0);
        l.push_back(0);
        assert_eq!(collect(&l), vec![1, 0]);
        assert!(l.contains(0) && l.contains(1) && !l.contains(2));
    }

    #[test]
    fn next_walks_towards_back() {
        let mut l = SlabList::new(4);
        for s in 0..3 {
            l.push_back(s);
        }
        assert_eq!(l.next(0), Some(1));
        assert_eq!(l.next(1), Some(2));
        assert_eq!(l.next(2), None);
    }
}
