//! Shared test support for differential and conformance testing.
//!
//! This module generates randomized simulation *cells* — a `(SimConfig,
//! Workload)` pair — spanning the full policy cross-product, and checks
//! that [`Engine`] and [`OracleEngine`] agree on them **bit-identically**:
//! same [`Report`] (floats compared by bit pattern), same observer event
//! streams, same per-core response-time histograms.
//!
//! Generators are deterministic functions of a `u64` seed rather than
//! proptest strategies, so the library carries no test-framework
//! dependency; property tests shrink over the seed/parameter integers and
//! call [`random_cell`] / [`check_conformance`] inside the property.

use crate::arbitration::ArbitrationKind;
use crate::config::SimConfig;
use crate::engine::Engine;
use crate::fault::FaultPlan;
use crate::metrics::Report;
use crate::observer::RecordingObserver;
use crate::oracle::OracleEngine;
use crate::replacement::ReplacementKind;
use crate::rng::Xoshiro256;
use crate::workload::Workload;
use std::collections::BTreeMap;
use std::fmt::Debug;

/// One differential test cell: a configuration plus a workload.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Simulation parameters.
    pub config: SimConfig,
    /// The traces to replay.
    pub workload: Workload,
}

/// Every arbitration kind, parameterized with the given remap period /
/// row shift where applicable. Covers all five paper policies (FIFO,
/// Priority, the Permute family, RandomPick) plus the FR-FCFS extension.
pub fn all_arbitrations(period: u64) -> Vec<ArbitrationKind> {
    vec![
        ArbitrationKind::Fifo,
        ArbitrationKind::Priority,
        ArbitrationKind::DynamicPriority { period },
        ArbitrationKind::CyclePriority { period },
        ArbitrationKind::CycleReversePriority { period },
        ArbitrationKind::InterleavePriority { period },
        ArbitrationKind::SweepPriority { period },
        ArbitrationKind::RandomPick,
        ArbitrationKind::FrFcfs { row_shift: 2 },
    ]
}

/// All replacement kinds.
pub fn all_replacements() -> [ReplacementKind; 4] {
    ReplacementKind::ALL
}

/// A deterministic pseudo-random workload: `p` traces over a universe of
/// `pages` local pages, each at most `max_len` references (empty traces
/// included on purpose — they are an engine edge case). Three per-trace
/// styles are mixed: cyclic sweeps (replacement adversaries), uniform
/// random, and hot-page skew (coalescing exercise when `shared`).
pub fn random_workload(seed: u64, p: usize, pages: u32, max_len: usize, shared: bool) -> Workload {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut traces = Vec::with_capacity(p);
    for _ in 0..p {
        let len = rng.gen_index(max_len + 1);
        let style = rng.gen_index(3);
        let mut t = Vec::with_capacity(len);
        for i in 0..len {
            let page = match style {
                0 => (i as u32) % pages,
                1 => rng.gen_index(pages as usize) as u32,
                _ => {
                    if rng.gen_index(2) == 0 {
                        0
                    } else {
                        rng.gen_index(pages as usize) as u32
                    }
                }
            };
            t.push(page);
        }
        traces.push(t);
    }
    if shared {
        Workload::shared_from_refs(traces)
    } else {
        Workload::from_refs(traces)
    }
}

/// A fully random cell derived from one seed: random arbitration (all 9
/// kinds), replacement (all 4), `p ≤ 6`, `k ≤ 16`, `q ≤ 4`, remap period
/// `T ≤ 24`, `far_latency ≤ 3`, disjoint or shared traces.
pub fn random_cell(seed: u64) -> Cell {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let p = 1 + rng.gen_index(6);
    let pages = 1 + rng.gen_index(12) as u32;
    let max_len = rng.gen_index(33);
    let shared = rng.gen_index(4) == 0;
    let hbm_slots = 1 + rng.gen_index(16);
    let channels = 1 + rng.gen_index(4);
    let far_latency = 1 + rng.gen_index(3) as u64;
    let period = 1 + rng.gen_index(24) as u64;
    let arbs = all_arbitrations(period);
    let arbitration = arbs[rng.gen_index(arbs.len())];
    let replacement = all_replacements()[rng.gen_index(4)];
    let sim_seed = rng.next_u64();
    let workload = random_workload(rng.next_u64(), p, pages, max_len, shared);
    Cell {
        config: SimConfig {
            hbm_slots,
            channels,
            arbitration,
            replacement,
            far_latency,
            seed: sim_seed,
            max_ticks: 100_000,
        },
        workload,
    }
}

/// Workload shapes for the exhaustive conformance grid. Deliberately
/// varied: disjoint cyclic sweeps (replacement adversaries), disjoint
/// uniform-random, shared hot-page traces (exercises fetch coalescing),
/// and a ragged mix with an empty trace (engine edge case).
pub fn grid_workloads() -> Vec<Workload> {
    vec![
        // Four cores cycling over six pages each — thrashes small HBM.
        Workload::from_refs(vec![(0..6).cycle().take(18).collect(); 4]),
        // Pseudo-random disjoint traces.
        random_workload(11, 3, 8, 24, false),
        // Shared universe: cross-core coalescing actually occurs.
        random_workload(23, 4, 5, 20, true),
        // Ragged: one empty trace, one singleton, one longer.
        Workload::from_refs(vec![vec![], vec![2], vec![0, 1, 2, 3, 0, 1, 2, 3]]),
    ]
}

/// The exhaustive 288-cell conformance grid: 9 arbitration kinds × 4
/// replacement kinds × 4 workload shapes × 2 parameter sets of
/// `(hbm_slots, channels, far_latency, remap period)`. This single
/// definition backs the Engine/Oracle differential suite
/// (`tests/differential.rs`), the bounds-interval test, and the
/// `hbm-model` calibration/validation grid, so all three always agree on
/// what "the conformance grid" means.
pub fn conformance_grid() -> Vec<Cell> {
    let params = [(4usize, 1usize, 1u64, 5u64), (8, 2, 3, 3)];
    let workloads = grid_workloads();
    let mut cells = Vec::new();
    for &(k, q, far, period) in &params {
        for arbitration in all_arbitrations(period) {
            for replacement in all_replacements() {
                for (wi, w) in workloads.iter().enumerate() {
                    cells.push(Cell {
                        config: SimConfig {
                            hbm_slots: k,
                            channels: q,
                            arbitration,
                            replacement,
                            far_latency: far,
                            seed: 0x5eed ^ (wi as u64),
                            max_ticks: 100_000,
                        },
                        workload: w.clone(),
                    });
                }
            }
        }
    }
    cells
}

/// A deterministic pseudo-random [`FaultPlan`] scheduled inside
/// `[0, horizon)`: up to 3 outage windows (widths 1–3 channels), up to 3
/// degradation windows (1–4 extra ticks), and a transient model in three
/// seeds out of four (probabilities spanning 0.1–1.0, retry bounds 1–4).
/// Plans are occasionally empty on purpose — the empty-plan identity is
/// part of the contract under test.
pub fn random_fault_plan(seed: u64, horizon: u64) -> FaultPlan {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xfa17_fa17_fa17_fa17);
    let horizon = horizon.max(2);
    let mut plan = FaultPlan::new();
    let window = |rng: &mut Xoshiro256| {
        let start = rng.gen_index(horizon as usize - 1) as u64;
        let len = 1 + rng.gen_index(((horizon - start) as usize).min(40)) as u64;
        (start, start + len)
    };
    for _ in 0..rng.gen_index(4) {
        let (start, end) = window(&mut rng);
        plan = plan.outage(start, end, 1 + rng.gen_index(3));
    }
    for _ in 0..rng.gen_index(4) {
        let (start, end) = window(&mut rng);
        plan = plan.degradation(start, end, 1 + rng.gen_index(4) as u64);
    }
    if rng.gen_index(4) != 0 {
        let prob = [0.1, 0.5, 0.9, 1.0][rng.gen_index(4)];
        plan = plan.transient(prob, 1 + rng.gen_index(4) as u32, rng.next_u64());
    }
    plan
}

/// Runs the optimized [`Engine`], recording every event.
pub fn run_engine(config: SimConfig, workload: &Workload) -> (Report, RecordingObserver) {
    run_engine_with_faults(config, FaultPlan::default(), workload)
}

/// Runs the naive [`OracleEngine`], recording every event.
pub fn run_oracle(config: SimConfig, workload: &Workload) -> (Report, RecordingObserver) {
    run_oracle_with_faults(config, FaultPlan::default(), workload)
}

/// Runs the optimized [`Engine`] under a fault plan, recording every event.
pub fn run_engine_with_faults(
    config: SimConfig,
    plan: FaultPlan,
    workload: &Workload,
) -> (Report, RecordingObserver) {
    let mut obs = RecordingObserver::default();
    let report = Engine::with_faults(config, plan, workload).run(&mut obs);
    (report, obs)
}

/// Runs the naive [`OracleEngine`] under a fault plan, recording every
/// event.
pub fn run_oracle_with_faults(
    config: SimConfig,
    plan: FaultPlan,
    workload: &Workload,
) -> (Report, RecordingObserver) {
    let mut obs = RecordingObserver::default();
    let report = OracleEngine::with_faults(config, plan, workload).run(&mut obs);
    (report, obs)
}

/// Per-core response-time histograms (`response → count`) from a recorded
/// serve stream.
pub fn response_histograms(obs: &RecordingObserver, p: usize) -> Vec<BTreeMap<u64, u64>> {
    let mut hists = vec![BTreeMap::new(); p];
    for &(_, core, _, response, _) in &obs.serves {
        *hists[core as usize].entry(response).or_insert(0) += 1;
    }
    hists
}

fn first_diff<T: PartialEq + Debug>(name: &str, engine: &[T], oracle: &[T]) -> Result<(), String> {
    if engine == oracle {
        return Ok(());
    }
    let i = engine
        .iter()
        .zip(oracle)
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| engine.len().min(oracle.len()));
    Err(format!(
        "{name} streams diverge (engine has {} events, oracle {}); first difference at index {i}:\n  engine: {:?}\n  oracle: {:?}",
        engine.len(),
        oracle.len(),
        engine.get(i),
        oracle.get(i),
    ))
}

macro_rules! cmp_count {
    ($field:ident, $a:expr, $b:expr) => {
        if $a.$field != $b.$field {
            return Err(format!(
                concat!(stringify!($field), " differs: engine {:?} vs oracle {:?}"),
                $a.$field, $b.$field
            ));
        }
    };
}

macro_rules! cmp_f64_bits {
    ($field:ident, $a:expr, $b:expr) => {
        if $a.$field.to_bits() != $b.$field.to_bits() {
            return Err(format!(
                concat!(
                    stringify!($field),
                    " differs bitwise: engine {:?} vs oracle {:?}"
                ),
                $a.$field, $b.$field
            ));
        }
    };
}

/// Field-by-field comparison of two reports; floats must match **bit for
/// bit** (both engines perform the identical arithmetic in the identical
/// order, so even accumulated means and stddevs are reproducible exactly).
pub fn compare_reports(engine: &Report, oracle: &Report) -> Result<(), String> {
    cmp_count!(makespan, engine, oracle);
    cmp_count!(served, engine, oracle);
    cmp_count!(hits, engine, oracle);
    cmp_count!(misses, engine, oracle);
    cmp_count!(fetches, engine, oracle);
    cmp_count!(evictions, engine, oracle);
    cmp_count!(remaps, engine, oracle);
    cmp_count!(truncated, engine, oracle);
    cmp_count!(max_queue_len, engine, oracle);
    {
        let (engine, oracle) = (&engine.faults, &oracle.faults);
        cmp_count!(outage_blocked_ticks, engine, oracle);
        cmp_count!(degraded_fetches, engine, oracle);
        cmp_count!(transient_faults, engine, oracle);
    }
    cmp_f64_bits!(hit_rate, engine, oracle);
    cmp_f64_bits!(mean_queue_len, engine, oracle);
    {
        let (engine, oracle) = (&engine.response, &oracle.response);
        cmp_count!(count, engine, oracle);
        cmp_count!(min, engine, oracle);
        cmp_count!(max, engine, oracle);
        cmp_count!(p99_upper_bound, engine, oracle);
        cmp_f64_bits!(mean, engine, oracle);
        cmp_f64_bits!(inconsistency, engine, oracle);
    }
    if engine.per_core.len() != oracle.per_core.len() {
        return Err(format!(
            "per_core length differs: engine {} vs oracle {}",
            engine.per_core.len(),
            oracle.per_core.len()
        ));
    }
    for (c, (engine, oracle)) in engine.per_core.iter().zip(&oracle.per_core).enumerate() {
        let err = |msg: String| format!("per_core[{c}]: {msg}");
        let inner = (|| -> Result<(), String> {
            cmp_count!(served, engine, oracle);
            cmp_count!(hits, engine, oracle);
            cmp_count!(finish_tick, engine, oracle);
            cmp_count!(max_response, engine, oracle);
            cmp_f64_bits!(mean_response, engine, oracle);
            Ok(())
        })();
        inner.map_err(err)?;
    }
    Ok(())
}

/// Comparison of complete event streams from both engines — stronger than
/// the report comparison: the two simulations must emit the very same
/// enqueue/evict/serve/fetch/remap/completion sequences.
pub fn compare_events(
    engine: &RecordingObserver,
    oracle: &RecordingObserver,
) -> Result<(), String> {
    first_diff("enqueue", &engine.enqueues, &oracle.enqueues)?;
    first_diff("eviction", &engine.evictions, &oracle.evictions)?;
    first_diff("serve", &engine.serves, &oracle.serves)?;
    first_diff("fetch", &engine.fetches, &oracle.fetches)?;
    first_diff("remap", &engine.remaps, &oracle.remaps)?;
    first_diff("completion", &engine.completions, &oracle.completions)?;
    first_diff("fault", &engine.faults, &oracle.faults)?;
    Ok(())
}

/// Runs one cell through both engines and verifies full agreement:
/// bit-identical [`Report`], identical event streams, and identical
/// per-core response-time histograms. Returns the (shared) report on
/// success, a human-readable divergence description on failure.
pub fn check_conformance(config: SimConfig, workload: &Workload) -> Result<Report, String> {
    check_conformance_with_faults(config, FaultPlan::default(), workload)
}

/// [`check_conformance`] under an injected [`FaultPlan`]: both engines run
/// the same plan and must still agree bit for bit — fault events and
/// counters included.
pub fn check_conformance_with_faults(
    config: SimConfig,
    plan: FaultPlan,
    workload: &Workload,
) -> Result<Report, String> {
    let (engine_report, engine_obs) = run_engine_with_faults(config, plan.clone(), workload);
    let (oracle_report, oracle_obs) = run_oracle_with_faults(config, plan, workload);
    compare_reports(&engine_report, &oracle_report)?;
    compare_events(&engine_obs, &oracle_obs)?;
    let p = workload.cores();
    let engine_hists = response_histograms(&engine_obs, p);
    let oracle_hists = response_histograms(&oracle_obs, p);
    for (c, (he, ho)) in engine_hists.iter().zip(&oracle_hists).enumerate() {
        if he != ho {
            return Err(format!(
                "per-core response histogram differs for core {c}:\n  engine: {he:?}\n  oracle: {ho:?}"
            ));
        }
    }
    Ok(engine_report)
}

/// Runs a batch of `(config, plan)` cells over one shared workload through
/// [`crate::lockstep::BatchEngine`], recording every cell's events.
pub fn run_batch_with_faults(
    cells: &[(SimConfig, FaultPlan)],
    workload: &Workload,
) -> (Vec<Report>, Vec<RecordingObserver>) {
    let flat = std::sync::Arc::new(crate::flat::FlatWorkload::new(workload));
    let batch_cells: Vec<crate::lockstep::BatchCell> = cells
        .iter()
        .map(|(config, faults)| crate::lockstep::BatchCell {
            config: *config,
            faults: faults.clone(),
        })
        .collect();
    let engine = crate::lockstep::BatchEngine::try_new(flat, &batch_cells)
        .unwrap_or_else(|e| panic!("invalid batch cell: {e}"));
    let mut observers: Vec<RecordingObserver> = vec![RecordingObserver::default(); cells.len()];
    let reports = engine.run(&mut observers);
    (reports, observers)
}

/// Runs a batch of cells through [`crate::lockstep::BatchEngine`] and
/// verifies every cell agrees **bit-identically** with both the scalar
/// [`Engine`] and the [`OracleEngine`]: reports (floats by bit pattern),
/// full event streams, and per-core response histograms. Returns the
/// reports on success, a divergence description naming the cell index on
/// failure.
pub fn check_batch_conformance(
    cells: &[(SimConfig, FaultPlan)],
    workload: &Workload,
) -> Result<Vec<Report>, String> {
    let (batch_reports, batch_obs) = run_batch_with_faults(cells, workload);
    let p = workload.cores();
    for (i, (config, plan)) in cells.iter().enumerate() {
        let err = |msg: String| format!("batch cell {i} ({config:?}, faults {plan:?}): {msg}");
        let (engine_report, engine_obs) = run_engine_with_faults(*config, plan.clone(), workload);
        compare_reports(&batch_reports[i], &engine_report)
            .map_err(|m| err(format!("vs Engine: {m}")))?;
        compare_events(&batch_obs[i], &engine_obs).map_err(|m| err(format!("vs Engine: {m}")))?;
        let (oracle_report, oracle_obs) = run_oracle_with_faults(*config, plan.clone(), workload);
        compare_reports(&batch_reports[i], &oracle_report)
            .map_err(|m| err(format!("vs OracleEngine: {m}")))?;
        compare_events(&batch_obs[i], &oracle_obs)
            .map_err(|m| err(format!("vs OracleEngine: {m}")))?;
        let batch_hists = response_histograms(&batch_obs[i], p);
        let engine_hists = response_histograms(&engine_obs, p);
        if batch_hists != engine_hists {
            return Err(err("per-core response histograms differ".to_string()));
        }
    }
    Ok(batch_reports)
}

/// Like [`check_batch_conformance`] but panics with full batch context on
/// any divergence.
pub fn assert_batch_conformance(
    cells: &[(SimConfig, FaultPlan)],
    workload: &Workload,
) -> Vec<Report> {
    match check_batch_conformance(cells, workload) {
        Ok(reports) => reports,
        Err(msg) => panic!(
            "BatchEngine diverges from the scalar engines!\n{msg}\nworkload ({} cores, shared: {}): {:?}",
            workload.cores(),
            workload.is_shared(),
            workload
                .traces()
                .iter()
                .map(|t| t.as_slice().to_vec())
                .collect::<Vec<_>>(),
        ),
    }
}

/// Like [`check_conformance`] but panics with full cell context on any
/// divergence. Returns the shared report.
pub fn assert_conformance(config: SimConfig, workload: &Workload) -> Report {
    assert_conformance_with_faults(config, FaultPlan::default(), workload)
}

/// Like [`check_conformance_with_faults`] but panics with full cell
/// context (fault plan included) on any divergence.
pub fn assert_conformance_with_faults(
    config: SimConfig,
    plan: FaultPlan,
    workload: &Workload,
) -> Report {
    match check_conformance_with_faults(config, plan.clone(), workload) {
        Ok(report) => report,
        Err(msg) => panic!(
            "Engine and OracleEngine diverge!\n{msg}\nconfig: {config:?}\nfaults: {plan:?}\nworkload ({} cores, shared: {}): {:?}",
            workload.cores(),
            workload.is_shared(),
            workload
                .traces()
                .iter()
                .map(|t| t.as_slice().to_vec())
                .collect::<Vec<_>>(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CoreId;

    #[test]
    fn random_workload_is_deterministic() {
        let a = random_workload(7, 4, 8, 20, false);
        let b = random_workload(7, 4, 8, 20, false);
        assert_eq!(a.cores(), b.cores());
        for c in 0..a.cores() as CoreId {
            assert_eq!(a.trace(c).as_slice(), b.trace(c).as_slice());
        }
    }

    #[test]
    fn random_cell_spans_policies() {
        // Over a modest seed range the generator must hit every
        // arbitration and replacement kind.
        let mut arbs = std::collections::HashSet::new();
        let mut reps = std::collections::HashSet::new();
        for seed in 0..200 {
            let cell = random_cell(seed);
            arbs.insert(std::mem::discriminant(&cell.config.arbitration));
            reps.insert(cell.config.replacement);
        }
        assert_eq!(arbs.len(), 9, "all arbitration kinds generated");
        assert_eq!(reps.len(), 4, "all replacement kinds generated");
    }

    #[test]
    fn conformance_on_a_handful_of_cells() {
        for seed in 0..8 {
            let cell = random_cell(seed);
            assert_conformance(cell.config, &cell.workload);
        }
    }

    #[test]
    fn random_fault_plan_is_deterministic_and_valid() {
        let mut nonempty = 0;
        for seed in 0..50 {
            let a = random_fault_plan(seed, 200);
            let b = random_fault_plan(seed, 200);
            assert_eq!(a, b, "same seed, same plan");
            a.validate()
                .unwrap_or_else(|e| panic!("generated plan invalid: {e} ({a:?})"));
            if !a.is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 40, "most generated plans carry faults");
    }

    #[test]
    fn faulty_conformance_on_a_handful_of_cells() {
        for seed in 0..8 {
            let cell = random_cell(seed);
            let plan = random_fault_plan(seed, 200);
            assert_conformance_with_faults(cell.config, plan, &cell.workload);
        }
    }

    #[test]
    fn histograms_count_serves() {
        let w = Workload::from_refs(vec![vec![0, 0, 0]]);
        let (_, obs) = run_engine(SimConfig::default(), &w);
        let h = response_histograms(&obs, 1);
        assert_eq!(h[0].get(&1), Some(&2), "two hits at response 1");
        assert_eq!(h[0].get(&2), Some(&1), "one miss at response 2");
    }
}
