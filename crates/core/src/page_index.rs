//! Dense page indexing: maps every [`GlobalPage`] a workload can reference
//! to a compact `u32` index, so the engine's hot-path state (residency,
//! pin counts, waiter chains) lives in flat arrays instead of hash maps.
//!
//! Workload traces use contiguous core-local page ids (Property 1, §3.2),
//! so for disjoint workloads the map is a pure offset: core `c`'s local
//! page `l` gets index `base[c] + l`, computed from one O(total refs) scan
//! with no hashing at all. Shared (non-disjoint) workloads use the global
//! id directly. When a workload's id space is pathologically sparse —
//! dense sizing would dwarf the trace — the indexer falls back to a
//! one-time hash compaction pass, so the per-tick hot path still sees
//! dense `u32` indices; only [`PageIndexer::index`] pays a hash lookup.

use crate::fxhash::FxHashMap;
use crate::ids::GlobalPage;
use crate::workload::Workload;

/// Dense-size budget: direct (offset-based) indexing is used only while the
/// dense universe stays within a multiple of the trace length, between an
/// always-acceptable floor and a hard memory cap (the engine allocates a
/// few `u32` words per indexed page).
fn direct_limit(total_refs: usize) -> usize {
    total_refs.saturating_mul(16).clamp(1 << 20, 1 << 28)
}

#[derive(Debug)]
enum Mode {
    /// Disjoint workload: index = `base[core] + local`. `base` holds `p+1`
    /// cumulative offsets so `base[c+1]` bounds core `c`'s segment.
    DirectDisjoint { base: Vec<u32> },
    /// Shared workload with a compact global id space: index = global id.
    DirectShared,
    /// Sparse id space: one-time hash compaction, first-appearance order
    /// (canonical: cores in increasing id, references in trace order).
    Remap { map: FxHashMap<u64, u32> },
}

/// A precomputed map from workload pages to dense `0..total_pages` indices.
#[derive(Debug)]
pub struct PageIndexer {
    mode: Mode,
    total: usize,
}

impl PageIndexer {
    /// Builds the indexer for `workload` (one scan of every trace).
    pub fn for_workload(workload: &Workload) -> PageIndexer {
        let limit = direct_limit(workload.total_refs());
        if workload.is_shared() {
            let max = workload
                .traces()
                .iter()
                .flat_map(|t| t.as_slice().iter().copied())
                .max();
            let total = max.map_or(0, |m| m as usize + 1);
            if total <= limit {
                return PageIndexer {
                    mode: Mode::DirectShared,
                    total,
                };
            }
            return Self::remap(workload);
        }
        let p = workload.cores();
        let mut base = Vec::with_capacity(p + 1);
        let mut total = 0usize;
        base.push(0);
        for trace in workload.traces() {
            if let Some(&m) = trace.as_slice().iter().max() {
                total += m as usize + 1;
            }
            if total > limit {
                return Self::remap(workload);
            }
            base.push(total as u32);
        }
        PageIndexer {
            mode: Mode::DirectDisjoint { base },
            total,
        }
    }

    /// Hash-compaction fallback: assigns indices in first-appearance order.
    fn remap(workload: &Workload) -> PageIndexer {
        let mut map = FxHashMap::default();
        for core in 0..workload.cores() {
            let core = core as crate::ids::CoreId;
            for i in 0..workload.trace(core).len() {
                let g = workload.global_page(core, i);
                let next = map.len() as u32;
                map.entry(g.0).or_insert(next);
            }
        }
        let total = map.len();
        PageIndexer {
            mode: Mode::Remap { map },
            total,
        }
    }

    /// Size of the dense index space (all indices are `< total_pages`).
    #[inline]
    pub fn total_pages(&self) -> usize {
        self.total
    }

    /// True when indexing is a pure offset computation (no hashing).
    pub fn is_direct(&self) -> bool {
        !matches!(self.mode, Mode::Remap { .. })
    }

    /// The dense index of `page`.
    ///
    /// # Panics
    /// May panic (or return an out-of-range index) for pages outside the
    /// workload's universe; use [`try_index`](Self::try_index) for those.
    #[inline]
    pub fn index(&self, page: GlobalPage) -> u32 {
        match &self.mode {
            Mode::DirectDisjoint { base } => base[page.core() as usize] + page.local(),
            Mode::DirectShared => page.0 as u32,
            Mode::Remap { map } => *map.get(&page.0).expect("page outside workload universe"),
        }
    }

    /// The dense index of `page`, or `None` if it is outside the universe.
    pub fn try_index(&self, page: GlobalPage) -> Option<u32> {
        match &self.mode {
            Mode::DirectDisjoint { base } => {
                let core = page.core() as usize;
                if core + 1 >= base.len() {
                    return None;
                }
                let idx = base[core].checked_add(page.local())?;
                (idx < base[core + 1]).then_some(idx)
            }
            Mode::DirectShared => (page.0 < self.total as u64).then_some(page.0 as u32),
            Mode::Remap { map } => map.get(&page.0).copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CoreId;

    #[test]
    fn disjoint_workload_gets_direct_offsets() {
        let w = Workload::from_refs(vec![vec![0, 2, 1], vec![5, 0]]);
        let ix = PageIndexer::for_workload(&w);
        assert!(ix.is_direct());
        // Core 0 spans locals 0..=2 (3 pages), core 1 spans 0..=5 (6).
        assert_eq!(ix.total_pages(), 9);
        assert_eq!(ix.index(GlobalPage::new(0, 2)), 2);
        assert_eq!(ix.index(GlobalPage::new(1, 0)), 3);
        assert_eq!(ix.index(GlobalPage::new(1, 5)), 8);
    }

    #[test]
    fn indices_are_unique_across_cores() {
        let w = Workload::from_refs(vec![vec![0, 1], vec![0, 1], vec![0, 1]]);
        let ix = PageIndexer::for_workload(&w);
        let mut seen = Vec::new();
        for c in 0..3 {
            for l in 0..2 {
                seen.push(ix.index(GlobalPage::new(c as CoreId, l)));
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6, "no two workload pages share an index");
        assert!(seen.iter().all(|&i| (i as usize) < ix.total_pages()));
    }

    #[test]
    fn shared_workload_uses_global_ids() {
        let w = Workload::shared_from_refs(vec![vec![0, 7], vec![7, 3]]);
        let ix = PageIndexer::for_workload(&w);
        assert!(ix.is_direct());
        assert_eq!(ix.total_pages(), 8);
        // Page 7 referenced by both cores resolves to one index.
        assert_eq!(ix.index(GlobalPage(7)), 7);
    }

    #[test]
    fn sparse_ids_fall_back_to_remap() {
        // One reference to an astronomically large local id: direct sizing
        // would need ~2^31 entries for a 2-reference trace.
        let w = Workload::from_refs(vec![vec![0, u32::MAX - 1]]);
        let ix = PageIndexer::for_workload(&w);
        assert!(!ix.is_direct());
        assert_eq!(ix.total_pages(), 2);
        let a = ix.index(GlobalPage::new(0, 0));
        let b = ix.index(GlobalPage::new(0, u32::MAX - 1));
        assert_ne!(a, b);
        assert!((a as usize) < 2 && (b as usize) < 2);
    }

    #[test]
    fn try_index_rejects_foreign_pages() {
        let w = Workload::from_refs(vec![vec![0, 1]]);
        let ix = PageIndexer::for_workload(&w);
        assert_eq!(ix.try_index(GlobalPage::new(0, 1)), Some(1));
        assert_eq!(
            ix.try_index(GlobalPage::new(0, 2)),
            None,
            "beyond max local"
        );
        assert_eq!(ix.try_index(GlobalPage::new(1, 0)), None, "unknown core");
        let shared = Workload::shared_from_refs(vec![vec![4]]);
        let sx = PageIndexer::for_workload(&shared);
        assert_eq!(sx.try_index(GlobalPage(4)), Some(4));
        assert_eq!(sx.try_index(GlobalPage(5)), None);
    }

    #[test]
    fn empty_and_degenerate_workloads() {
        assert_eq!(PageIndexer::for_workload(&Workload::new()).total_pages(), 0);
        let w = Workload::from_refs(vec![vec![], vec![3]]);
        let ix = PageIndexer::for_workload(&w);
        assert_eq!(ix.total_pages(), 4);
        assert_eq!(ix.index(GlobalPage::new(1, 3)), 3);
        assert_eq!(ix.try_index(GlobalPage::new(0, 0)), None, "empty core");
    }
}
