//! A fast, dependency-free hasher for the simulator's hot hash maps.
//!
//! The HBM residency map is consulted once per outstanding request per tick,
//! which makes SipHash (std's default) a measurable cost at paper scale
//! (hundreds of cores × millions of ticks). This module implements the
//! multiply-xor "Fx" hash used by rustc — not cryptographic, but our keys
//! are page ids we generate ourselves, so HashDoS is not a concern.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hash: a word-at-a-time multiply-rotate-xor mix.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
    }

    #[test]
    fn nearby_values_hash_differently() {
        // Not a strict requirement of a hash, but Fx should separate
        // consecutive integers; a failure here means the mix is broken.
        let h: Vec<u64> = (0u64..64).map(|i| hash_of(&i)).collect();
        let mut uniq = h.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), h.len());
    }

    #[test]
    fn map_basic_operations() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
        assert_eq!(m.remove(&500), Some(1000));
        assert_eq!(m.get(&500), None);
    }

    #[test]
    fn byte_stream_tail_handled() {
        // Exercise the chunks_exact remainder path.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(
            hash_of(b"abcdefghi".as_slice()),
            hash_of(b"abcdefghj".as_slice())
        );
    }
}
