//! Lockstep divergence triage: when a batched run's trajectory differs
//! from the scalar engine's, locate the **first divergent (cell, tick,
//! phase)** and dump both engines' state there.
//!
//! The bench harness's lockstep checksum gate compares scalar and batched
//! sweeps by aggregate signature; a bare mismatch ("exit 1") leaves a
//! phase-major bug needing hours of manual bisection. This module turns
//! the mismatch into a minutes-scale repro: it re-runs both engines with
//! [`RecordingObserver`]s, diffs the per-cell event streams in canonical
//! intra-tick order, and re-steps both engines to the divergent tick to
//! snapshot core/page/channel state on each side.
//!
//! Event categories map back to tick phases: outage faults fire in the
//! tick-begin fault pre-step, remaps in step 1, enqueues in step 2,
//! evictions in step 3, serves (and core completions) in step 4, and
//! fetches plus fetch-level faults in step 5 — so the first differing
//! event names the phase where the executors parted ways.

use crate::engine::Engine;
use crate::flat::FlatWorkload;
use crate::ids::Tick;
use crate::lockstep::{BatchCell, BatchEngine};
use crate::observer::{FaultEvent, NoopObserver, RecordingObserver};
use std::fmt;
use std::sync::Arc;

/// The first point where two event streams of the same cell disagree.
#[derive(Debug, Clone)]
pub struct EventDivergence {
    /// Tick of the first differing event (the smaller of the two sides
    /// when both have an event at the diff index).
    pub tick: Tick,
    /// The five-step-loop phase the differing event belongs to.
    pub phase: &'static str,
    /// Both sides' event at the diff index, or the extra event when one
    /// stream is a strict prefix of the other.
    pub detail: String,
}

/// A located scalar-vs-batched divergence, ready to print.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Index of the divergent cell within the batch.
    pub cell: usize,
    /// Tick of the first divergent event.
    pub tick: Tick,
    /// Phase of the first divergent event.
    pub phase: &'static str,
    /// The differing events themselves.
    pub detail: String,
    /// Scalar engine state entering the divergent tick.
    pub scalar_state: String,
    /// Batched engine state (same cell) entering the divergent tick.
    pub batched_state: String,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "first divergence: cell {} tick {} phase {}",
            self.cell, self.tick, self.phase
        )?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "--- scalar state entering tick {} ---", self.tick)?;
        for line in self.scalar_state.lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "--- batched state entering tick {} ---", self.tick)?;
        for line in self.batched_state.lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Phase rank for tie-breaking divergences within one tick, following the
/// canonical intra-tick order.
fn fault_phase(event: &FaultEvent) -> (&'static str, u8) {
    match event {
        FaultEvent::OutageStart { .. } | FaultEvent::OutageEnd { .. } => {
            ("tick-begin (fault pre-step)", 0)
        }
        FaultEvent::DegradedFetch { .. } | FaultEvent::TransientFailure { .. } => {
            ("transfer (step 5)", 5)
        }
    }
}

/// First index where two same-category streams differ, as a ranked
/// divergence candidate.
fn first_diff<T: PartialEq + fmt::Debug>(
    name: &str,
    phase: &'static str,
    rank: u8,
    scalar: &[T],
    batched: &[T],
    tick_of: impl Fn(&T) -> Tick,
) -> Option<(Tick, u8, EventDivergence)> {
    let common = scalar.len().min(batched.len());
    for i in 0..common {
        if scalar[i] != batched[i] {
            let tick = tick_of(&scalar[i]).min(tick_of(&batched[i]));
            return Some((
                tick,
                rank,
                EventDivergence {
                    tick,
                    phase,
                    detail: format!(
                        "{name}[{i}]: scalar {:?} vs batched {:?}",
                        scalar[i], batched[i]
                    ),
                },
            ));
        }
    }
    // One stream is a strict prefix of the other: the first extra event
    // is the divergence.
    let (side, stream) = match scalar.len().cmp(&batched.len()) {
        std::cmp::Ordering::Less => ("batched", batched),
        std::cmp::Ordering::Greater => ("scalar", scalar),
        std::cmp::Ordering::Equal => return None,
    };
    let tick = tick_of(&stream[common]);
    Some((
        tick,
        rank,
        EventDivergence {
            tick,
            phase,
            detail: format!(
                "{name}[{common}]: only {side} has {:?} (lengths {} vs {})",
                stream[common],
                scalar.len(),
                batched.len()
            ),
        },
    ))
}

/// Diffs one cell's scalar and batched event streams, returning the
/// earliest divergence in (tick, canonical phase order). `None` means the
/// streams are identical.
pub fn diff_event_streams(
    scalar: &RecordingObserver,
    batched: &RecordingObserver,
) -> Option<EventDivergence> {
    let mut best: Option<(Tick, u8, EventDivergence)> = None;
    let mut consider = |cand: Option<(Tick, u8, EventDivergence)>| {
        if let Some(c) = cand {
            if best.as_ref().is_none_or(|b| (c.0, c.1) < (b.0, b.1)) {
                best = Some(c);
            }
        }
    };
    consider(first_diff(
        "remaps",
        "remap (step 1)",
        1,
        &scalar.remaps,
        &batched.remaps,
        |&t| t,
    ));
    consider(first_diff(
        "enqueues",
        "issue (step 2)",
        2,
        &scalar.enqueues,
        &batched.enqueues,
        |e| e.0,
    ));
    consider(first_diff(
        "evictions",
        "evict (step 3)",
        3,
        &scalar.evictions,
        &batched.evictions,
        |e| e.0,
    ));
    consider(first_diff(
        "serves",
        "serve (step 4)",
        4,
        &scalar.serves,
        &batched.serves,
        |e| e.0,
    ));
    consider(first_diff(
        "completions",
        "serve (step 4)",
        4,
        &scalar.completions,
        &batched.completions,
        |e| e.0,
    ));
    consider(first_diff(
        "fetches",
        "transfer (step 5)",
        5,
        &scalar.fetches,
        &batched.fetches,
        |e| e.0,
    ));
    // Faults carry their phase in the event kind; diff them pairwise and
    // attribute the phase of whichever side's event is reported.
    let fault_cand = {
        let common = scalar.faults.len().min(batched.faults.len());
        let mut cand = None;
        for i in 0..common {
            if scalar.faults[i] != batched.faults[i] {
                let (phase, rank) = fault_phase(&scalar.faults[i].1);
                let tick = scalar.faults[i].0.min(batched.faults[i].0);
                cand = Some((
                    tick,
                    rank,
                    EventDivergence {
                        tick,
                        phase,
                        detail: format!(
                            "faults[{i}]: scalar {:?} vs batched {:?}",
                            scalar.faults[i], batched.faults[i]
                        ),
                    },
                ));
                break;
            }
        }
        if cand.is_none() && scalar.faults.len() != batched.faults.len() {
            let (side, stream) = if scalar.faults.len() > batched.faults.len() {
                ("scalar", &scalar.faults)
            } else {
                ("batched", &batched.faults)
            };
            let (phase, rank) = fault_phase(&stream[common].1);
            cand = Some((
                stream[common].0,
                rank,
                EventDivergence {
                    tick: stream[common].0,
                    phase,
                    detail: format!(
                        "faults[{common}]: only {side} has {:?} (lengths {} vs {})",
                        stream[common],
                        scalar.faults.len(),
                        batched.faults.len()
                    ),
                },
            ));
        }
        cand
    };
    consider(fault_cand);
    best.map(|(_, _, d)| d)
}

/// Steps a fresh scalar engine for `cell` to the start of `tick` (or as
/// close as fast-forward granularity allows) and snapshots its state.
fn scalar_state_at(flat: &Arc<FlatWorkload>, cell: &BatchCell, tick: Tick) -> String {
    let mut engine = Engine::from_flat(cell.config, cell.faults.clone(), Arc::clone(flat));
    let mut noop = NoopObserver;
    while !engine.is_done() && engine.tick() < tick.min(engine.max_ticks()) {
        engine.step(&mut noop);
    }
    engine.dump_state()
}

/// Steps a fresh batch (phase-major) until `cell` reaches the start of
/// `tick` and snapshots that cell's state.
fn batched_state_at(
    flat: &Arc<FlatWorkload>,
    cells: &[BatchCell],
    cell: usize,
    tick: Tick,
) -> String {
    let mut engine = match BatchEngine::try_new(Arc::clone(flat), cells) {
        Ok(engine) => engine,
        Err(err) => return format!("(batch rebuild failed: {err})"),
    };
    let mut observers = vec![NoopObserver; cells.len()];
    while engine.cell_active(cell) && engine.cell_tick(cell) < tick {
        if engine.step_phase_round(&mut observers) == 0 {
            break;
        }
    }
    engine.cell_state_dump(cell)
}

/// Runs `cells` through both executors with recording observers and
/// locates the first divergent (cell, tick, phase), with both engines'
/// state entering that tick. `None` means the trajectories are
/// bit-identical at event granularity — if an aggregate checksum still
/// disagrees, the drift is in derived metrics, not the tick loop.
///
/// Cost: two full re-runs of the batch plus two partial re-runs for the
/// state snapshots — this only ever executes on a failed gate, where
/// debuggability beats wall time.
pub fn first_divergence(flat: &Arc<FlatWorkload>, cells: &[BatchCell]) -> Option<DivergenceReport> {
    let scalar_streams: Vec<RecordingObserver> = cells
        .iter()
        .map(|c| {
            let mut obs = RecordingObserver::default();
            Engine::from_flat(c.config, c.faults.clone(), Arc::clone(flat)).run(&mut obs);
            obs
        })
        .collect();
    let mut batched_streams = vec![RecordingObserver::default(); cells.len()];
    BatchEngine::try_new(Arc::clone(flat), cells)
        .ok()?
        .run(&mut batched_streams);
    let mut best: Option<(Tick, usize, EventDivergence)> = None;
    for (i, (s, b)) in scalar_streams.iter().zip(&batched_streams).enumerate() {
        if let Some(d) = diff_event_streams(s, b) {
            if best.as_ref().is_none_or(|(t, _, _)| d.tick < *t) {
                best = Some((d.tick, i, d));
            }
        }
    }
    let (_, cell, d) = best?;
    Some(DivergenceReport {
        cell,
        tick: d.tick,
        phase: d.phase,
        detail: d.detail,
        scalar_state: scalar_state_at(flat, &cells[cell], d.tick),
        batched_state: batched_state_at(flat, cells, cell, d.tick),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitration::ArbitrationKind;
    use crate::config::SimConfig;
    use crate::fault::FaultPlan;
    use crate::replacement::ReplacementKind;
    use crate::workload::Workload;

    fn flat() -> Arc<FlatWorkload> {
        let refs: Vec<u32> = (0..200).map(|i| (i * 7) % 23).collect();
        Arc::new(FlatWorkload::new(&Workload::from_refs(vec![
            refs.clone(),
            refs.iter().map(|r| r + 11).collect(),
        ])))
    }

    fn cell(k: usize, q: usize) -> BatchCell {
        BatchCell {
            config: SimConfig {
                hbm_slots: k,
                channels: q,
                arbitration: ArbitrationKind::Priority,
                replacement: ReplacementKind::Lru,
                far_latency: 1,
                seed: 3,
                max_ticks: u64::MAX,
            },
            faults: FaultPlan::default(),
        }
    }

    #[test]
    fn healthy_batch_has_no_divergence() {
        let flat = flat();
        let cells = vec![cell(4, 1), cell(8, 2), cell(16, 1)];
        assert!(first_divergence(&flat, &cells).is_none());
    }

    #[test]
    fn perturbed_serve_event_is_located_with_phase() {
        let flat = flat();
        let cells = [cell(4, 1)];
        let mut obs = RecordingObserver::default();
        Engine::from_flat(cells[0].config, FaultPlan::default(), Arc::clone(&flat)).run(&mut obs);
        let mut perturbed = obs.clone();
        let mid = perturbed.serves.len() / 2;
        perturbed.serves[mid].3 += 1; // response time off by one
        let d = diff_event_streams(&obs, &perturbed).expect("must diverge");
        assert_eq!(d.phase, "serve (step 4)");
        assert_eq!(d.tick, obs.serves[mid].0);
        assert!(d.detail.contains(&format!("serves[{mid}]")), "{}", d.detail);
    }

    #[test]
    fn prefix_stream_reports_first_extra_event() {
        let flat = flat();
        let cells = [cell(4, 1)];
        let mut obs = RecordingObserver::default();
        Engine::from_flat(cells[0].config, FaultPlan::default(), Arc::clone(&flat)).run(&mut obs);
        let mut truncated = obs.clone();
        let cut = truncated.fetches.len() - 3;
        truncated.fetches.truncate(cut);
        let d = diff_event_streams(&truncated, &obs).expect("must diverge");
        assert_eq!(d.phase, "transfer (step 5)");
        assert!(d.detail.contains("only batched has"), "{}", d.detail);
        assert_eq!(d.tick, obs.fetches[cut].0);
    }

    #[test]
    fn earliest_divergence_wins_across_categories() {
        let mut a = RecordingObserver::default();
        a.serves.push((5, 0, crate::ids::GlobalPage(1), 1, true));
        a.evictions.push((3, crate::ids::GlobalPage(2)));
        let mut b = a.clone();
        b.serves[0].3 = 2; // tick 5, step 4
        b.evictions[0].1 = crate::ids::GlobalPage(9); // tick 3, step 3
        let d = diff_event_streams(&a, &b).expect("must diverge");
        assert_eq!(d.tick, 3);
        assert_eq!(d.phase, "evict (step 3)");
    }
}
