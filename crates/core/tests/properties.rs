//! Property-based tests over the simulator's invariants.
//!
//! These run every arbitration × replacement combination on randomized
//! workloads and check the conservation laws and model guarantees that must
//! hold for *any* policy.

use hbm_core::bounds::makespan_lower_bound;
use hbm_core::{ArbitrationKind, RecordingObserver, ReplacementKind, Report, SimBuilder, Workload};
use proptest::prelude::*;

/// Strategy: a workload of 1..=6 cores, each with 0..=40 references over a
/// small page universe (forcing reuse and eviction).
fn workloads() -> impl Strategy<Value = Workload> {
    prop::collection::vec(prop::collection::vec(0u32..12, 0..40), 1..6)
        .prop_map(Workload::from_refs)
}

fn arbitration_kinds() -> impl Strategy<Value = ArbitrationKind> {
    prop_oneof![
        Just(ArbitrationKind::Fifo),
        Just(ArbitrationKind::Priority),
        Just(ArbitrationKind::DynamicPriority { period: 7 }),
        Just(ArbitrationKind::CyclePriority { period: 5 }),
        Just(ArbitrationKind::CycleReversePriority { period: 9 }),
        Just(ArbitrationKind::InterleavePriority { period: 6 }),
        Just(ArbitrationKind::RandomPick),
        Just(ArbitrationKind::FrFcfs { row_shift: 2 }),
    ]
}

fn replacement_kinds() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::Fifo),
        Just(ReplacementKind::Clock),
        Just(ReplacementKind::Random),
    ]
}

fn run(
    w: &Workload,
    k: usize,
    q: usize,
    arb: ArbitrationKind,
    rep: ReplacementKind,
    seed: u64,
) -> (Report, RecordingObserver) {
    let mut obs = RecordingObserver::default();
    let report = SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .replacement(rep)
        .seed(seed)
        .max_ticks(1_000_000)
        .run_with_observer(w, &mut obs);
    (report, obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reference is served exactly once, for every policy combination.
    #[test]
    fn conservation_of_requests(
        w in workloads(),
        k in 1usize..20,
        q in 1usize..4,
        arb in arbitration_kinds(),
        rep in replacement_kinds(),
        seed in 0u64..1000,
    ) {
        let (r, obs) = run(&w, k, q, arb, rep, seed);
        prop_assert!(!r.truncated, "run must terminate");
        prop_assert_eq!(r.served, w.total_refs() as u64);
        prop_assert_eq!(r.hits + r.misses, r.served);
        prop_assert_eq!(obs.serves.len() as u64, r.served);
        prop_assert_eq!(obs.fetches.len() as u64, r.misses);
        // Each core is served exactly its trace length, in trace order.
        for (c, t) in w.traces().iter().enumerate() {
            let served: Vec<u32> = obs
                .serves
                .iter()
                .filter(|s| s.1 == c as u32)
                .map(|s| s.2.local())
                .collect();
            prop_assert_eq!(served.as_slice(), t.as_slice());
        }
    }

    /// Makespan never beats the information-theoretic lower bound, and hits
    /// have response exactly 1 while misses have response >= 2.
    #[test]
    fn makespan_and_response_bounds(
        w in workloads(),
        k in 1usize..20,
        q in 1usize..4,
        arb in arbitration_kinds(),
        rep in replacement_kinds(),
    ) {
        let (r, obs) = run(&w, k, q, arb, rep, 1);
        let lb = makespan_lower_bound(&w, k, q);
        prop_assert!(r.makespan >= lb || w.total_refs() == 0,
            "makespan {} below lower bound {}", r.makespan, lb);
        for (_, _, _, response, hit) in &obs.serves {
            if *hit {
                prop_assert_eq!(*response, 1);
            } else {
                prop_assert!(*response >= 2);
            }
        }
    }

    /// Bit-for-bit determinism given (workload, config, seed).
    #[test]
    fn determinism(
        w in workloads(),
        arb in arbitration_kinds(),
        seed in 0u64..100,
    ) {
        let (a, oa) = run(&w, 8, 2, arb, ReplacementKind::Lru, seed);
        let (b, ob) = run(&w, 8, 2, arb, ReplacementKind::Lru, seed);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.hits, b.hits);
        prop_assert_eq!(a.response.mean, b.response.mean);
        prop_assert_eq!(oa.serves, ob.serves);
        prop_assert_eq!(oa.evictions, ob.evictions);
    }

    /// With one core there is no channel contention: all arbitration
    /// policies produce the same makespan.
    #[test]
    fn single_core_policies_coincide(
        refs in prop::collection::vec(0u32..10, 1..60),
        k in 2usize..12,
    ) {
        let w = Workload::from_refs(vec![refs]);
        let base = run(&w, k, 1, ArbitrationKind::Fifo, ReplacementKind::Lru, 0).0;
        for arb in [
            ArbitrationKind::Priority,
            ArbitrationKind::DynamicPriority { period: 3 },
            ArbitrationKind::RandomPick,
        ] {
            let r = run(&w, k, 1, arb, ReplacementKind::Lru, 0).0;
            prop_assert_eq!(r.makespan, base.makespan, "{} differs", arb);
            prop_assert_eq!(r.hits, base.hits);
        }
    }

    /// Resident set never exceeds k; evictions only happen under pressure.
    #[test]
    fn hbm_capacity_respected(
        w in workloads(),
        k in 1usize..6,
    ) {
        let (r, _) = run(&w, k, 1, ArbitrationKind::Fifo, ReplacementKind::Lru, 0);
        // If everything fits, nothing is evicted.
        if w.total_unique_pages() <= k {
            prop_assert_eq!(r.evictions, 0);
            // Each unique page misses exactly once (cold), rest hit.
            prop_assert_eq!(r.misses, w.total_unique_pages() as u64);
        }
    }

    /// Workloads that fit in HBM: misses = unique pages regardless of
    /// policy, and makespan is within fetch-serialization of the bound.
    #[test]
    fn fitting_workload_only_cold_misses(
        traces in prop::collection::vec(prop::collection::vec(0u32..5, 1..30), 1..4),
        arb in arbitration_kinds(),
    ) {
        let w = Workload::from_refs(traces);
        let k = w.total_unique_pages().max(1);
        let (r, _) = run(&w, k, 1, arb, ReplacementKind::Lru, 3);
        prop_assert_eq!(r.misses, w.total_unique_pages() as u64);
        prop_assert_eq!(r.evictions, 0);
    }

    /// More channels help FIFO substantially — scheduling anomalies can
    /// cost a few ticks (timing shifts change eviction order), but q=4 can
    /// never be *worse* than q=1 beyond small-constant noise.
    #[test]
    fn more_channels_help_fifo(
        w in workloads(),
        k in 4usize..16,
    ) {
        let m1 = run(&w, k, 1, ArbitrationKind::Fifo, ReplacementKind::Lru, 0).0.makespan;
        let m4 = run(&w, k, 4, ArbitrationKind::Fifo, ReplacementKind::Lru, 0).0.makespan;
        prop_assert!(m4 <= m1 + m1 / 4 + 8, "q=4 makespan {m4} vs q=1 {m1}");
    }

    /// Collapsing consecutive duplicate references removes only guaranteed
    /// hits. For a *single* core this is exact: the duplicate re-touches the
    /// page that is already most-recently-used, so cache state is unchanged
    /// and each removed ref saves exactly one tick. (With multiple cores the
    /// timing shift changes arbitration/LRU interleaving, so miss counts can
    /// legitimately drift — that version is not a theorem.)
    #[test]
    fn collapse_shortens(
        refs in prop::collection::vec(0u32..6, 1..50),
    ) {
        let w = Workload::from_refs(vec![refs.clone()]);
        let wc = w.collapse_consecutive();
        let removed = (w.total_refs() - wc.total_refs()) as u64;
        let a = run(&w, 4, 1, ArbitrationKind::Priority, ReplacementKind::Lru, 0).0;
        let b = run(&wc, 4, 1, ArbitrationKind::Priority, ReplacementKind::Lru, 0).0;
        prop_assert_eq!(b.makespan + removed, a.makespan);
        prop_assert_eq!(b.misses, a.misses, "collapsing only removes guaranteed hits");
    }
}

/// Strategy: shared workloads — global page ids drawn from one small
/// universe, so cross-core sharing actually occurs.
fn shared_workloads() -> impl Strategy<Value = Workload> {
    prop::collection::vec(prop::collection::vec(0u32..10, 1..30), 2..5)
        .prop_map(Workload::shared_from_refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shared workloads conserve requests under every policy and never
    /// fetch more than they miss; fetches are also bounded below by the
    /// union of pages (every distinct page crosses at least once).
    #[test]
    fn shared_conservation(
        w in shared_workloads(),
        k in 2usize..16,
        q in 1usize..3,
        arb in arbitration_kinds(),
        seed in 0u64..100,
    ) {
        let (r, obs) = run(&w, k, q, arb, ReplacementKind::Lru, seed);
        prop_assert!(!r.truncated);
        prop_assert_eq!(r.served, w.total_refs() as u64);
        prop_assert!(r.fetches <= r.misses, "coalescing only reduces fetches");
        prop_assert!(r.fetches >= w.total_unique_pages() as u64);
        prop_assert_eq!(obs.fetches.len() as u64, r.fetches);
        // Per-core serve order still equals the trace.
        for (c, t) in w.traces().iter().enumerate() {
            let served: Vec<u32> = obs
                .serves
                .iter()
                .filter(|s| s.1 == c as u32)
                .map(|s| s.2.local())
                .collect();
            prop_assert_eq!(served.as_slice(), t.as_slice());
        }
    }

    /// A shared workload never takes longer than the identical traces run
    /// disjointly (sharing only removes far-channel work) — checked for
    /// FIFO, whose schedule is insensitive to page identity beyond
    /// residency.
    #[test]
    fn sharing_never_hurts_fifo(
        traces in prop::collection::vec(prop::collection::vec(0u32..8, 1..25), 2..5),
        k in 4usize..16,
    ) {
        let shared = Workload::shared_from_refs(traces.clone());
        let disjoint = Workload::from_refs(traces);
        let rs = run(&shared, k, 1, ArbitrationKind::Fifo, ReplacementKind::Lru, 0).0;
        let rd = run(&disjoint, k, 1, ArbitrationKind::Fifo, ReplacementKind::Lru, 0).0;
        prop_assert!(
            rs.makespan <= rd.makespan + rd.makespan / 10 + 4,
            "shared {} vs disjoint {}",
            rs.makespan,
            rd.makespan
        );
    }

    /// far_latency = 1 is bit-identical to the default engine; larger
    /// latencies preserve conservation and only slow things down.
    #[test]
    fn far_latency_semantics(
        w in workloads(),
        k in 2usize..16,
        q in 1usize..3,
        lat in 1u64..6,
    ) {
        let base = SimBuilder::new()
            .hbm_slots(k)
            .channels(q)
            .arbitration(ArbitrationKind::Priority)
            .run(&w);
        let slow = SimBuilder::new()
            .hbm_slots(k)
            .channels(q)
            .far_latency(lat)
            .arbitration(ArbitrationKind::Priority)
            .max_ticks(10_000_000)
            .run(&w);
        prop_assert!(!slow.truncated);
        prop_assert_eq!(slow.served, base.served);
        if lat == 1 {
            prop_assert_eq!(slow.makespan, base.makespan);
            prop_assert_eq!(slow.hits, base.hits);
        } else {
            prop_assert!(slow.makespan >= base.makespan);
        }
    }
}
