//! Lockstep differential conformance suite: `BatchEngine` vs `Engine` vs
//! `OracleEngine`.
//!
//! The batched lockstep engine ([`hbm_core::BatchEngine`]) runs many
//! configuration cells over one shared workload as structure-of-arrays
//! columns. This suite requires every cell's trajectory to be
//! **bit-identical** to both the optimized scalar engine and the naive
//! oracle: same `Report` (floats compared by bit pattern), same observer
//! event streams, same per-core response-time histograms.
//!
//! Layers:
//! 1. the exhaustive policy grid of `differential.rs` — 9 arbitration ×
//!    4 replacement kinds × 4 workload shapes × 2 parameter sets
//!    (288 cells), batched per workload shape;
//! 2. seeded random batches of heterogeneous cells (k, q, policies,
//!    far_latency, seeds all varying within a batch);
//! 3. proptest batch-invariance properties: a batch of N equals the same
//!    cells as N singletons, arbitrary sub-batch splits are identical,
//!    and ragged termination (cells truncating at different ticks) never
//!    perturbs surviving cells.
//!
//! Policy (see README.md §Conformance testing): every PR that touches the
//! lockstep path must keep this suite green; CI runs it with
//! debug-assertions enabled in release mode.

use hbm_core::testkit::{
    all_arbitrations, all_replacements, assert_batch_conformance, check_batch_conformance,
    compare_events, compare_reports, random_workload, response_histograms, run_batch_with_faults,
    run_engine_with_faults,
};
use hbm_core::{
    BatchCell, BatchEngine, CoreId, Engine, FaultEvent, FaultPlan, FlatWorkload, GlobalPage,
    RecordingObserver, SimConfig, SimObserver, Tick, Workload,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// The workload shapes of `differential.rs`'s exhaustive grid: disjoint
/// cyclic sweeps, disjoint pseudo-random, shared hot-page traces
/// (coalescing), and a ragged mix with an empty trace.
fn grid_workloads() -> Vec<Workload> {
    vec![
        Workload::from_refs(vec![(0..6).cycle().take(18).collect(); 4]),
        random_workload(11, 3, 8, 24, false),
        random_workload(23, 4, 5, 20, true),
        Workload::from_refs(vec![vec![], vec![2], vec![0, 1, 2, 3, 0, 1, 2, 3]]),
    ]
}

fn fault_free(config: SimConfig) -> (SimConfig, FaultPlan) {
    (config, FaultPlan::default())
}

/// The exhaustive policy grid, batched: for each workload shape and
/// parameter set, all 36 arbitration × replacement cells run as one
/// lockstep batch and every cell is checked for full
/// BatchEngine/Engine/OracleEngine agreement — 288 cells total, the same
/// grid `differential.rs` runs scalar-vs-oracle.
#[test]
fn exhaustive_policy_grid_batched() {
    // (hbm_slots, channels, far_latency, remap period)
    let params = [(4usize, 1usize, 1u64, 5u64), (8, 2, 3, 3)];
    let workloads = grid_workloads();
    let mut cells_run = 0usize;
    for &(k, q, far, period) in &params {
        for (wi, w) in workloads.iter().enumerate() {
            let cells: Vec<(SimConfig, FaultPlan)> = all_arbitrations(period)
                .into_iter()
                .flat_map(|arbitration| {
                    all_replacements().into_iter().map(move |replacement| {
                        fault_free(SimConfig {
                            hbm_slots: k,
                            channels: q,
                            arbitration,
                            replacement,
                            far_latency: far,
                            seed: 0x5eed ^ (wi as u64),
                            max_ticks: 100_000,
                        })
                    })
                })
                .collect();
            assert_eq!(cells.len(), 36);
            assert_batch_conformance(&cells, w);
            cells_run += cells.len();
        }
    }
    assert!(
        cells_run >= 256,
        "grid ran {cells_run} cells, expected >= 256"
    );
}

/// Seeded heterogeneous batches: each batch mixes arbitrary k, q,
/// arbitration, replacement, far_latency, and per-cell seeds over one
/// shared workload — the exact shape the sweep harness submits.
#[test]
fn random_heterogeneous_batches_conform() {
    use hbm_core::rng::Xoshiro256;
    for batch_seed in 0..24u64 {
        let mut rng = Xoshiro256::seed_from_u64(0xba7c_4000 + batch_seed);
        let p = 1 + rng.gen_index(5);
        let shared = rng.gen_index(3) == 0;
        let w = random_workload(rng.next_u64(), p, 1 + rng.gen_index(10) as u32, 28, shared);
        let n = 2 + rng.gen_index(6);
        let cells: Vec<(SimConfig, FaultPlan)> = (0..n)
            .map(|_| {
                let period = 1 + rng.gen_index(20) as u64;
                let arbs = all_arbitrations(period);
                fault_free(SimConfig {
                    hbm_slots: 1 + rng.gen_index(16),
                    channels: 1 + rng.gen_index(4),
                    arbitration: arbs[rng.gen_index(arbs.len())],
                    replacement: all_replacements()[rng.gen_index(4)],
                    far_latency: 1 + rng.gen_index(3) as u64,
                    seed: rng.next_u64(),
                    max_ticks: 100_000,
                })
            })
            .collect();
        assert_batch_conformance(&cells, &w);
    }
}

/// One simulator event, tagged for the shared merged log of
/// [`phase_major_event_stream_is_a_stable_per_cell_merge`].
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    TickStart(Tick),
    Remap(Tick),
    Enqueue(Tick, CoreId, GlobalPage),
    Evict(Tick, GlobalPage),
    Serve(Tick, CoreId, GlobalPage, u64, bool),
    Fetch(Tick, CoreId, GlobalPage),
    Done(Tick, CoreId),
    Fault(Tick, FaultEvent),
}

/// Observer that appends every event of one cell, tagged with the cell
/// index, to a log shared by the whole batch — exposing the *merged*
/// cross-cell event order the batch executor produces.
struct TaggedObserver {
    cell: usize,
    log: Rc<RefCell<Vec<(usize, Ev)>>>,
}

impl SimObserver for TaggedObserver {
    fn on_tick_start(&mut self, tick: Tick) {
        self.log.borrow_mut().push((self.cell, Ev::TickStart(tick)));
    }
    fn on_remap(&mut self, tick: Tick) {
        self.log.borrow_mut().push((self.cell, Ev::Remap(tick)));
    }
    fn on_enqueue(&mut self, tick: Tick, core: CoreId, page: GlobalPage) {
        self.log
            .borrow_mut()
            .push((self.cell, Ev::Enqueue(tick, core, page)));
    }
    fn on_evict(&mut self, tick: Tick, page: GlobalPage) {
        self.log
            .borrow_mut()
            .push((self.cell, Ev::Evict(tick, page)));
    }
    fn on_serve(&mut self, tick: Tick, core: CoreId, page: GlobalPage, response: u64, hit: bool) {
        self.log
            .borrow_mut()
            .push((self.cell, Ev::Serve(tick, core, page, response, hit)));
    }
    fn on_fetch(&mut self, tick: Tick, core: CoreId, page: GlobalPage) {
        self.log
            .borrow_mut()
            .push((self.cell, Ev::Fetch(tick, core, page)));
    }
    fn on_core_done(&mut self, tick: Tick, core: CoreId) {
        self.log
            .borrow_mut()
            .push((self.cell, Ev::Done(tick, core)));
    }
    fn on_fault(&mut self, tick: Tick, event: FaultEvent) {
        self.log
            .borrow_mut()
            .push((self.cell, Ev::Fault(tick, event)));
    }
}

/// Phase-boundary observer-event interleaving: the batched (phase-major)
/// event stream is a **stable per-cell merge** of the scalar streams —
/// projecting the merged log onto any one cell reproduces that cell's
/// scalar event sequence exactly — and within the first round the
/// phase-major order is visible: every live cell's `on_tick_start` fires
/// before any cell's issue-phase events.
#[test]
fn phase_major_event_stream_is_a_stable_per_cell_merge() {
    let w = random_workload(97, 4, 6, 32, true);
    let flat = Arc::new(FlatWorkload::new(&w));
    let cells: Vec<BatchCell> = [(4usize, 1usize), (16, 2), (8, 1), (6, 3)]
        .iter()
        .enumerate()
        .map(|(i, &(k, q))| BatchCell {
            config: SimConfig {
                hbm_slots: k,
                channels: q,
                arbitration: all_arbitrations(4)[i * 2],
                replacement: all_replacements()[i],
                far_latency: 1 + i as u64 % 2,
                seed: 0xfeed + i as u64,
                max_ticks: 100_000,
            },
            faults: FaultPlan::default(),
        })
        .collect();
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut observers: Vec<TaggedObserver> = (0..cells.len())
        .map(|cell| TaggedObserver {
            cell,
            log: Rc::clone(&log),
        })
        .collect();
    BatchEngine::try_new(Arc::clone(&flat), &cells)
        .unwrap()
        .run(&mut observers);
    let merged = log.borrow();

    // Stability: the per-cell projection equals the scalar stream.
    for (i, cell) in cells.iter().enumerate() {
        let scalar_log = Rc::new(RefCell::new(Vec::new()));
        let mut obs = TaggedObserver {
            cell: i,
            log: Rc::clone(&scalar_log),
        };
        Engine::from_flat(cell.config, cell.faults.clone(), Arc::clone(&flat)).run(&mut obs);
        let projected: Vec<&Ev> = merged
            .iter()
            .filter(|(c, _)| *c == i)
            .map(|(_, e)| e)
            .collect();
        let scalar = scalar_log.borrow();
        let scalar_events: Vec<&Ev> = scalar.iter().map(|(_, e)| e).collect();
        assert_eq!(
            projected, scalar_events,
            "cell {i}: batched projection must equal scalar stream"
        );
    }

    // Phase-boundary interleaving: at tick 0 every cell is live and none
    // fast-forwards (all have pending issues), so round 0's begin phase —
    // the tick-starts (plus any tick-0 remap/outage events) of *all*
    // cells, in increasing cell order — completes before any cell's issue
    // phase emits its first event.
    let n = cells.len();
    let begin_cells: Vec<usize> = merged
        .iter()
        .filter_map(|(c, e)| matches!(e, Ev::TickStart(0)).then_some(*c))
        .take(n)
        .collect();
    assert_eq!(
        begin_cells,
        (0..n).collect::<Vec<_>>(),
        "round 0 must open every cell's tick in cell order"
    );
    let nth_tick_start = merged
        .iter()
        .position(|(c, e)| *c == n - 1 && matches!(e, Ev::TickStart(0)))
        .expect("last cell's tick 0 must start");
    let first_issue = merged
        .iter()
        .position(|(_, e)| {
            matches!(
                e,
                Ev::Enqueue(..) | Ev::Evict(..) | Ev::Serve(..) | Ev::Fetch(..) | Ev::Done(..)
            )
        })
        .expect("some cell must issue at tick 0");
    assert!(
        nth_tick_start < first_issue,
        "all begin-phase events ({nth_tick_start}) must precede the first \
         issue-phase event ({first_issue})"
    );
}

/// Builds the cell list for the proptest layers from shrinkable integers.
fn cells_from_specs(specs: &[(usize, usize, usize, usize, u64)]) -> Vec<(SimConfig, FaultPlan)> {
    specs
        .iter()
        .map(|&(k, q, arb_i, rep_i, seed)| {
            fault_free(SimConfig {
                hbm_slots: 1 + k,
                channels: 1 + q,
                arbitration: all_arbitrations(1 + (seed % 13))[arb_i],
                replacement: all_replacements()[rep_i],
                far_latency: 1 + (seed % 3),
                seed,
                max_ticks: 100_000,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch invariance, part 1: running N cells as one batch is
    /// bit-identical (reports, events, histograms) to running the same
    /// cells as N singletons through the scalar engine.
    #[test]
    fn batch_of_n_equals_n_singletons(
        traces in prop::collection::vec(prop::collection::vec(0u32..8, 0..20), 1..4),
        specs in prop::collection::vec(
            (0usize..12, 0usize..3, 0usize..9, 0usize..4, 0u64..1024), 1..6),
        shared in 0usize..2,
    ) {
        let w = if shared == 1 {
            Workload::shared_from_refs(traces)
        } else {
            Workload::from_refs(traces)
        };
        let cells = cells_from_specs(&specs);
        let (batch_reports, batch_obs) = run_batch_with_faults(&cells, &w);
        for (i, (config, plan)) in cells.iter().enumerate() {
            let (r, o) = run_engine_with_faults(*config, plan.clone(), &w);
            if let Err(m) = compare_reports(&batch_reports[i], &r)
                .and_then(|_| compare_events(&batch_obs[i], &o))
            {
                return Err(TestCaseError::fail(format!("cell {i}: {m}\nconfig {config:?}")));
            }
            prop_assert_eq!(
                response_histograms(&batch_obs[i], w.cores()),
                response_histograms(&o, w.cores()),
                "cell {} histograms", i
            );
        }
    }

    /// Batch invariance, part 2: splitting one batch at an arbitrary point
    /// into two sub-batches yields identical reports — batching is
    /// associative because cells share no mutable state.
    #[test]
    fn arbitrary_batch_splits_are_identical(
        traces in prop::collection::vec(prop::collection::vec(0u32..6, 1..16), 1..4),
        specs in prop::collection::vec(
            (0usize..10, 0usize..3, 0usize..9, 0usize..4, 0u64..512), 2..7),
        split_at in 0usize..7,
    ) {
        let w = Workload::from_refs(traces);
        let cells = cells_from_specs(&specs);
        let split = split_at.min(cells.len());
        let (whole, whole_obs) = run_batch_with_faults(&cells, &w);
        let (left, left_obs) = run_batch_with_faults(&cells[..split], &w);
        let (right, right_obs) = run_batch_with_faults(&cells[split..], &w);
        let parts = left.iter().chain(&right);
        let parts_obs = left_obs.iter().chain(&right_obs);
        for (i, ((a, b), (ao, bo))) in whole
            .iter()
            .zip(parts)
            .zip(whole_obs.iter().zip(parts_obs))
            .enumerate()
        {
            if let Err(m) = compare_reports(a, b).and_then(|_| compare_events(ao, bo)) {
                return Err(TestCaseError::fail(format!(
                    "split at {split}: cell {i} differs: {m}"
                )));
            }
        }
    }

    /// Batch invariance, part 3: cells with different total tick counts —
    /// including cells truncated by their own `max_ticks` long before
    /// their neighbours finish — never perturb surviving cells. Every
    /// cell's report must equal its singleton scalar run, truncation
    /// flags included.
    #[test]
    fn ragged_termination_does_not_perturb_survivors(
        traces in prop::collection::vec(prop::collection::vec(0u32..6, 4..24), 1..4),
        budgets in prop::collection::vec(1u64..40, 2..6),
        k in 1usize..8,
    ) {
        let w = Workload::from_refs(traces);
        let cells: Vec<(SimConfig, FaultPlan)> = budgets
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                fault_free(SimConfig {
                    hbm_slots: k,
                    channels: 1,
                    arbitration: all_arbitrations(5)[i % 9],
                    replacement: all_replacements()[i % 4],
                    far_latency: 1 + (i as u64 % 3),
                    seed: 42 + i as u64,
                    // Odd cells get a tiny budget (likely truncated);
                    // even cells run to completion.
                    max_ticks: if i % 2 == 1 { b } else { 100_000 },
                })
            })
            .collect();
        if let Err(m) = check_batch_conformance(&cells, &w) {
            return Err(TestCaseError::fail(m));
        }
    }

    /// The two batch executors agree bit for bit: phase-major
    /// (`BatchEngine::run`) vs the cell-major reference
    /// (`run_cell_major`) on arbitrary heterogeneous batches — reports,
    /// event streams, and histograms — including batches where a tick
    /// budget truncates some cells mid-batch (the serve-path
    /// `CellBudget::max_ticks` maps to per-cell `max_ticks`; its batch
    /// test lives in `crates/experiments/tests/batch_scratch_panic.rs`).
    #[test]
    fn phase_major_equals_cell_major(
        traces in prop::collection::vec(prop::collection::vec(0u32..8, 0..20), 1..4),
        specs in prop::collection::vec(
            (0usize..12, 0usize..3, 0usize..9, 0usize..4, 0u64..1024), 1..6),
        budget in 1u64..60,
        shared in 0usize..2,
    ) {
        let w = if shared == 1 {
            Workload::shared_from_refs(traces)
        } else {
            Workload::from_refs(traces)
        };
        let flat = Arc::new(FlatWorkload::new(&w));
        let cells: Vec<BatchCell> = cells_from_specs(&specs)
            .into_iter()
            .enumerate()
            .map(|(i, (mut config, faults))| {
                // Odd cells get a tiny tick budget so truncation lands
                // mid-batch while neighbours keep running.
                if i % 2 == 1 {
                    config.max_ticks = budget;
                }
                BatchCell { config, faults }
            })
            .collect();
        let mut phase_obs: Vec<RecordingObserver> =
            vec![RecordingObserver::default(); cells.len()];
        let phase_reports = BatchEngine::try_new(Arc::clone(&flat), &cells)
            .unwrap()
            .run(&mut phase_obs);
        let mut cell_obs: Vec<RecordingObserver> =
            vec![RecordingObserver::default(); cells.len()];
        let cell_reports = BatchEngine::try_new(Arc::clone(&flat), &cells)
            .unwrap()
            .run_cell_major(&mut cell_obs);
        for i in 0..cells.len() {
            if let Err(m) = compare_reports(&phase_reports[i], &cell_reports[i])
                .and_then(|_| compare_events(&phase_obs[i], &cell_obs[i]))
            {
                return Err(TestCaseError::fail(format!(
                    "phase-major vs cell-major: cell {i} differs: {m}"
                )));
            }
            prop_assert_eq!(
                response_histograms(&phase_obs[i], w.cores()),
                response_histograms(&cell_obs[i], w.cores()),
                "cell {} histograms", i
            );
        }
    }
}
