//! Sharing differential suite: engines built from a shared
//! `Arc<FlatWorkload>` — and from recycled [`EngineScratch`] buffers —
//! must be **bit-identical** to engines built from an owned [`Workload`].
//!
//! The zero-copy sweep machinery (DESIGN.md §13) rests on two claims:
//!
//! 1. [`Engine::from_flat`] over a shared, immutable `FlatWorkload`
//!    replays the same trajectory as `Engine::with_faults` over the owned
//!    workload (same reports — floats compared by bit pattern — same
//!    event streams);
//! 2. [`Engine::from_flat_with_scratch`] is insensitive to the scratch's
//!    history: buffers recycled from an arbitrary previous cell (different
//!    workload, policies, sizes — even deliberately dirtied) produce the
//!    same trajectory as freshly allocated ones.
//!
//! Layers: a seeded grid over the full policy cross-product with random
//! fault plans (the scratch is threaded through *all* cells in sequence,
//! so each cell reuses buffers sized and dirtied by a different one), an
//! arbitration × replacement grid sharing one `Arc` across every cell,
//! and proptest-randomized cells that shrink failures to minimal traces.

use hbm_core::testkit::{
    all_arbitrations, all_replacements, compare_events, compare_reports, random_cell,
    random_fault_plan, random_workload,
};
use hbm_core::{
    Engine, EngineScratch, FaultPlan, FlatWorkload, OracleEngine, RecordingObserver, Report,
    SimBuilder, SimConfig, Workload,
};
use proptest::prelude::*;
use std::sync::Arc;

fn run_owned(config: SimConfig, plan: &FaultPlan, w: &Workload) -> (Report, RecordingObserver) {
    let mut obs = RecordingObserver::default();
    let report = Engine::with_faults(config, plan.clone(), w).run(&mut obs);
    (report, obs)
}

fn run_shared(
    config: SimConfig,
    plan: &FaultPlan,
    flat: &Arc<FlatWorkload>,
) -> (Report, RecordingObserver) {
    let mut obs = RecordingObserver::default();
    let report = Engine::from_flat(config, plan.clone(), Arc::clone(flat)).run(&mut obs);
    (report, obs)
}

fn run_with_scratch(
    config: SimConfig,
    plan: &FaultPlan,
    flat: &Arc<FlatWorkload>,
    scratch: &mut EngineScratch,
) -> (Report, RecordingObserver) {
    let mut obs = RecordingObserver::default();
    let engine = Engine::from_flat_with_scratch(config, plan.clone(), Arc::clone(flat), scratch);
    let report = engine.run_reusing(&mut obs, scratch);
    (report, obs)
}

/// Asserts all three construction paths agree bit for bit on one cell.
fn assert_cell_identical(
    config: SimConfig,
    plan: &FaultPlan,
    w: &Workload,
    scratch: &mut EngineScratch,
) {
    let flat = Arc::new(FlatWorkload::new(w));
    let (owned_r, owned_obs) = run_owned(config, plan, w);
    let (shared_r, shared_obs) = run_shared(config, plan, &flat);
    let (scratch_r, scratch_obs) = run_with_scratch(config, plan, &flat, scratch);
    for (name, r, obs) in [
        ("shared Arc<FlatWorkload>", &shared_r, &shared_obs),
        ("reused EngineScratch", &scratch_r, &scratch_obs),
    ] {
        if let Err(msg) =
            compare_reports(&owned_r, r).and_then(|()| compare_events(&owned_obs, obs))
        {
            panic!(
                "{name} engine diverges from owned-workload engine!\n{msg}\nconfig: {config:?}\nfaults: {plan:?}\nworkload ({} cores, shared: {}): {:?}",
                w.cores(),
                w.is_shared(),
                w.traces()
                    .iter()
                    .map(|t| t.as_slice().to_vec())
                    .collect::<Vec<_>>(),
            );
        }
    }
}

/// Seeded random cells across the full generator space, with fault plans.
/// One scratch threads through every cell in sequence, so each cell
/// inherits buffers sized and dirtied by a *different* workload and
/// configuration — exactly the sweep-worker reuse pattern.
#[test]
fn seeded_grid_owned_vs_shared_vs_scratch() {
    let mut scratch = EngineScratch::default();
    for seed in 0..64 {
        let cell = random_cell(seed);
        let plan = if seed % 2 == 0 {
            random_fault_plan(seed, 200)
        } else {
            FaultPlan::default()
        };
        assert_cell_identical(cell.config, &plan, &cell.workload, &mut scratch);
    }
}

/// One `Arc<FlatWorkload>` shared across the whole arbitration ×
/// replacement cross-product (the sweep-grid pattern: same workload,
/// varying policy and k) — every cell must match its owned twin.
#[test]
fn one_flat_serves_the_policy_cross_product() {
    let w = random_workload(0xf1a7, 4, 8, 24, false);
    let flat = Arc::new(FlatWorkload::new(&w));
    let mut scratch = EngineScratch::default();
    for arbitration in all_arbitrations(5) {
        for replacement in all_replacements() {
            for k in [2usize, 8] {
                let config = SimConfig {
                    hbm_slots: k,
                    channels: 2,
                    arbitration,
                    replacement,
                    far_latency: 1,
                    seed: 0x5eed,
                    max_ticks: 100_000,
                };
                let plan = FaultPlan::default();
                let (owned_r, owned_obs) = run_owned(config, &plan, &w);
                let (shared_r, shared_obs) = run_shared(config, &plan, &flat);
                let (scratch_r, scratch_obs) = run_with_scratch(config, &plan, &flat, &mut scratch);
                compare_reports(&owned_r, &shared_r).unwrap();
                compare_events(&owned_obs, &shared_obs).unwrap();
                compare_reports(&owned_r, &scratch_r).unwrap();
                compare_events(&owned_obs, &scratch_obs).unwrap();
            }
        }
    }
}

/// The oracle built from the shared form replays the same trajectory as
/// the oracle over the owned workload (it reads through the same trace
/// handles), and still agrees with the shared-form fast engine.
#[test]
fn oracle_accepts_the_shared_form() {
    for seed in 0..16 {
        let cell = random_cell(seed);
        let plan = random_fault_plan(seed, 150);
        let flat = Arc::new(FlatWorkload::new(&cell.workload));
        let mut obs_flat = RecordingObserver::default();
        let r_flat = OracleEngine::from_flat(cell.config, plan.clone(), &flat).run(&mut obs_flat);
        let mut obs_owned = RecordingObserver::default();
        let r_owned = OracleEngine::with_faults(cell.config, plan.clone(), &cell.workload)
            .run(&mut obs_owned);
        compare_reports(&r_owned, &r_flat).unwrap();
        compare_events(&obs_owned, &obs_flat).unwrap();
        let (engine_r, engine_obs) = run_shared(cell.config, &plan, &flat);
        compare_reports(&engine_r, &r_flat).unwrap();
        compare_events(&engine_obs, &obs_flat).unwrap();
    }
}

/// The builder's flat entry points match `try_build` exactly, and an
/// invalid config is still rejected before any engine is constructed.
#[test]
fn builder_flat_entry_points_match_owned() {
    let w = random_workload(0xb1d, 3, 6, 20, false);
    let flat = Arc::new(FlatWorkload::new(&w));
    let builder = SimBuilder::new().hbm_slots(4).channels(2).seed(9);
    let owned = builder
        .try_build(&w)
        .unwrap()
        .run(&mut hbm_core::NoopObserver);
    let shared = builder
        .try_build_flat(&flat)
        .unwrap()
        .run(&mut hbm_core::NoopObserver);
    let mut scratch = EngineScratch::default();
    let reused = builder
        .try_build_flat_reusing(&flat, &mut scratch)
        .unwrap()
        .run_reusing(&mut hbm_core::NoopObserver, &mut scratch);
    compare_reports(&owned, &shared).unwrap();
    compare_reports(&owned, &reused).unwrap();
    assert!(SimBuilder::new()
        .hbm_slots(0)
        .try_build_flat(&flat)
        .is_err());
    assert!(SimBuilder::new()
        .channels(0)
        .try_build_flat_reusing(&flat, &mut scratch)
        .is_err());
}

/// A scratch recycled from a *larger* cell (more cores, more pages, wider
/// bitsets, bigger HBM) re-arms correctly for a smaller one, and vice
/// versa — the resize-down/resize-up paths both fully overwrite.
#[test]
fn scratch_survives_extreme_size_changes() {
    let big = random_workload(1, 6, 16, 33, false);
    let small = Workload::from_refs(vec![vec![0, 1, 0]]);
    let mut scratch = EngineScratch::default();
    for _ in 0..3 {
        for (w, k, q) in [(&big, 16usize, 4usize), (&small, 1, 1), (&big, 2, 1)] {
            let config = SimConfig {
                hbm_slots: k,
                channels: q,
                seed: 7,
                ..SimConfig::default()
            };
            assert_cell_identical(config, &FaultPlan::default(), w, &mut scratch);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Proptest-randomized cells: proptest owns the traces, so a
    /// divergence between the owned, shared, and scratch-reuse paths
    /// shrinks to a minimal workload. The scratch is pre-dirtied by an
    /// unrelated cell inside each case.
    #[test]
    fn sharing_is_bit_identical(
        traces in prop::collection::vec(prop::collection::vec(0u32..10, 0..24), 1..5),
        policy in (0usize..9, 0usize..4),
        k in 1usize..12,
        q in 1usize..4,
        timing in (1u64..4, 1u64..12),
        shared in 0usize..2,
        seed in 0u64..1024,
    ) {
        let (arb_i, rep_i) = policy;
        let (far_latency, period) = timing;
        let workload = if shared == 1 {
            Workload::shared_from_refs(traces)
        } else {
            Workload::from_refs(traces)
        };
        let config = SimConfig {
            hbm_slots: k,
            channels: q,
            arbitration: all_arbitrations(period)[arb_i],
            replacement: all_replacements()[rep_i],
            far_latency,
            seed,
            max_ticks: 100_000,
        };
        // Dirty the scratch with an unrelated cell first.
        let mut scratch = EngineScratch::default();
        let dirty = random_cell(seed ^ 0xd1f7);
        let dirty_flat = Arc::new(FlatWorkload::new(&dirty.workload));
        let _ = run_with_scratch(dirty.config, &FaultPlan::default(), &dirty_flat, &mut scratch);
        let plan = random_fault_plan(seed, 100);
        assert_cell_identical(config, &plan, &workload, &mut scratch);
    }
}
