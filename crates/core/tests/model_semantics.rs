//! Hand-computed tick timelines verifying the engine implements §3.1's loop
//! exactly — the ground truth the rest of the repository builds on.

use hbm_core::{ArbitrationKind, RecordingObserver, ReplacementKind, SimBuilder, Workload};

fn builder(k: usize, q: usize, arb: ArbitrationKind) -> SimBuilder {
    SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .replacement(ReplacementKind::Lru)
}

/// One core, trace [0, 1]. Timeline (q=1, k=2):
/// t0: issue 0 -> miss, enqueue; fetch 0.
/// t1: 0 resident -> serve (w = 1-0+1 = 2). Core advances.
/// t2: issue 1 -> miss, enqueue; fetch 1.
/// t3: serve 1 (w = 2). Done; makespan = 4.
#[test]
fn exact_timeline_single_core_two_cold_misses() {
    let w = Workload::from_refs(vec![vec![0, 1]]);
    let mut obs = RecordingObserver::default();
    let r = builder(2, 1, ArbitrationKind::Fifo).run_with_observer(&w, &mut obs);
    assert_eq!(r.makespan, 4);
    assert_eq!(
        obs.enqueues,
        vec![
            (0, 0, hbm_core::GlobalPage::new(0, 0)),
            (2, 0, hbm_core::GlobalPage::new(0, 1))
        ]
    );
    assert_eq!(
        obs.fetches.iter().map(|f| f.0).collect::<Vec<_>>(),
        vec![0, 2]
    );
    assert_eq!(
        obs.serves.iter().map(|s| (s.0, s.3)).collect::<Vec<_>>(),
        vec![(1, 2), (3, 2)]
    );
}

/// Three cores race for one channel under FCFS; all request distinct pages
/// at t0. Fetch order = enqueue order (core index order at t0).
/// Serve times: core0 at t1 (w=2), core1 at t2 (w=3), core2 at t3 (w=4).
#[test]
fn exact_timeline_fcfs_serialization() {
    let w = Workload::from_refs(vec![vec![0], vec![0], vec![0]]);
    let mut obs = RecordingObserver::default();
    let r = builder(8, 1, ArbitrationKind::Fifo).run_with_observer(&w, &mut obs);
    assert_eq!(r.makespan, 4);
    let serves: Vec<(u64, u32, u64)> = obs.serves.iter().map(|s| (s.0, s.1, s.3)).collect();
    assert_eq!(serves, vec![(1, 0, 2), (2, 1, 3), (3, 2, 4)]);
}

/// Under static Priority with the same race, the fetch order is priority
/// order — identical here (core 0 highest), but reversing arrival shows the
/// difference: FIFO would honour arrival, Priority does not.
#[test]
fn priority_overrides_arrival_order() {
    // Core 2's request "arrives" in the same tick as everyone's; priority
    // decides. To create distinct arrivals, give core 0 a leading hit so its
    // miss arrives one tick later than cores 1 and 2.
    //
    // t0: c0 issues page 0 -> miss (everyone misses; queue [c0,c1,c2] or
    // priority order). Instead: preload c0's page via duplicate reference.
    let w = Workload::from_refs(vec![vec![0, 1], vec![0], vec![0]]);
    let mut obs_p = RecordingObserver::default();
    builder(8, 1, ArbitrationKind::Priority).run_with_observer(&w, &mut obs_p);
    // Fetches: t0 c0:0 (rank 0 wins), t1 c1:0, ... c0's page 1 misses at t2
    // after serving page 0 at t1; it beats c2 despite arriving later.
    let fetch_cores: Vec<u32> = obs_p.fetches.iter().map(|f| f.1).collect();
    assert_eq!(fetch_cores, vec![0, 1, 0, 2], "c0's later request beats c2");

    let mut obs_f = RecordingObserver::default();
    builder(8, 1, ArbitrationKind::Fifo).run_with_observer(&w, &mut obs_f);
    let fetch_cores_f: Vec<u32> = obs_f.fetches.iter().map(|f| f.1).collect();
    assert_eq!(fetch_cores_f, vec![0, 1, 2, 0], "FIFO honours arrival");
}

/// The FIFO-killer of §3.2/§4 in miniature: each core cycles over its pages
/// with HBM holding only a quarter of the union. FIFO gets zero (or
/// near-zero) hits; Priority retains working sets and hits plenty.
#[test]
fn fifo_killer_microcosm() {
    let pages = 64u32;
    let reps = 50usize;
    let p = 16usize;
    let trace: Vec<u32> = (0..pages).cycle().take(pages as usize * reps).collect();
    let w = Workload::from_refs(vec![trace; p]);
    let k = (pages as usize * p) / 4; // quarter of the union, as in Figure 3

    let fifo = builder(k, 1, ArbitrationKind::Fifo).run(&w);
    let prio = builder(k, 1, ArbitrationKind::Priority).run(&w);

    assert_eq!(fifo.hits, 0, "FIFO re-evicts every page before reuse");
    assert!(
        prio.hit_rate > 0.5,
        "Priority protects working sets; hit rate {}",
        prio.hit_rate
    );
    assert!(
        fifo.makespan > 2 * prio.makespan,
        "FIFO {} vs Priority {}",
        fifo.makespan,
        prio.makespan
    );
}

/// Theorem 3 in action: q channels cut Priority's makespan when the
/// workload is channel-bound.
#[test]
fn multiple_channels_scale_throughput() {
    // 16 cores, all cold misses (no reuse): pure channel-bound workload.
    // Each core has at most one outstanding request and a 2-tick
    // issue/serve cadence, so p must comfortably exceed 2q for the channels
    // to saturate.
    let trace: Vec<u32> = (0..200).collect();
    let w = Workload::from_refs(vec![trace; 16]);
    let k = 8000; // everything fits; only cold misses matter
    let m1 = builder(k, 1, ArbitrationKind::Priority).run(&w).makespan;
    let m4 = builder(k, 4, ArbitrationKind::Priority).run(&w).makespan;
    // 3200 fetches over 1 vs 4 channels: near-linear speedup.
    assert!(m1 >= 3200);
    assert!((m4 as f64) < m1 as f64 / 2.5, "q=4 {} vs q=1 {}", m4, m1);
}

/// Dynamic Priority's response-time bound: a thread reaches the top
/// priority within p permutations, so no request waits beyond ~p*T plus the
/// queue drain; inconsistency is far below static Priority's on a starving
/// workload.
#[test]
fn dynamic_priority_reduces_starvation() {
    let pages = 64u32;
    let p = 16usize;
    let trace: Vec<u32> = (0..pages).cycle().take(pages as usize * 50).collect();
    let w = Workload::from_refs(vec![trace; p]);
    let k = (pages as usize * p) / 4;

    let stat = builder(k, 1, ArbitrationKind::Priority).run(&w);
    let dyn_ = builder(k, 1, ArbitrationKind::DynamicPriority { period: k as u64 }).run(&w);
    let fifo = builder(k, 1, ArbitrationKind::Fifo).run(&w);

    assert!(
        dyn_.response.inconsistency < stat.response.inconsistency,
        "dynamic {} < static {}",
        dyn_.response.inconsistency,
        stat.response.inconsistency
    );
    // Worst-case starvation drops too.
    assert!(dyn_.worst_response() < stat.worst_response());
    // Makespan stays in the same ballpark as Priority (the paper: as good
    // or better than both FIFO and Priority; allow 10% at this tiny scale)
    // and far below FIFO's.
    assert!(dyn_.makespan as f64 <= stat.makespan as f64 * 1.10);
    assert!(dyn_.makespan * 2 < fifo.makespan);
    // FIFO's signature: lowest inconsistency, worst makespan (Table 1).
    assert!(fifo.response.inconsistency < dyn_.response.inconsistency);
}

/// Per-core disjointness: two cores referencing the same local ids touch
/// disjoint global pages, so one core's locality cannot create hits for the
/// other.
#[test]
fn namespaces_are_disjoint() {
    let w = Workload::from_refs(vec![vec![0, 0, 0], vec![0, 0, 0]]);
    let r = builder(8, 2, ArbitrationKind::Fifo).run(&w);
    // Each core cold-misses its own page 0 once: 2 misses, not 1.
    assert_eq!(r.misses, 2);
    assert_eq!(r.hits, 4);
}

/// Remap cadence: with period T, remaps happen at t = 0, T, 2T, ...
#[test]
fn remap_cadence_matches_step_one() {
    let w = Workload::from_refs(vec![vec![0, 1, 2, 3, 4, 5, 6, 7]; 4]);
    let mut obs = RecordingObserver::default();
    builder(4, 1, ArbitrationKind::CyclePriority { period: 8 }).run_with_observer(&w, &mut obs);
    for t in &obs.remaps {
        assert_eq!(t % 8, 0);
    }
    assert!(!obs.remaps.is_empty());
}
