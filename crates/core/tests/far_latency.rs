//! The far-channel transfer-latency extension: `far_latency > 1` models a
//! slower DRAM link while `far_latency = 1` is exactly the paper's model.

use hbm_core::{ArbitrationKind, RecordingObserver, ReplacementKind, SimBuilder, Workload};

fn builder(k: usize, q: usize, lat: u64) -> SimBuilder {
    SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .far_latency(lat)
        .arbitration(ArbitrationKind::Fifo)
        .replacement(ReplacementKind::Lru)
}

#[test]
fn latency_one_is_the_paper_model() {
    // Cross-check against the hand-computed timeline test: [0, 1] with
    // q = 1, k = 2 gives makespan 4 and responses [2, 2].
    let w = Workload::from_refs(vec![vec![0, 1]]);
    let mut obs = RecordingObserver::default();
    let r = builder(2, 1, 1).run_with_observer(&w, &mut obs);
    assert_eq!(r.makespan, 4);
    assert_eq!(
        obs.serves.iter().map(|s| s.3).collect::<Vec<_>>(),
        vec![2, 2]
    );
}

#[test]
fn miss_response_scales_with_far_latency() {
    // A single cold miss: issued t0, transfer occupies F ticks, served at
    // t = F, response F + 1.
    for lat in [1u64, 2, 3, 8] {
        let w = Workload::from_refs(vec![vec![0]]);
        let mut obs = RecordingObserver::default();
        let r = builder(4, 1, lat).run_with_observer(&w, &mut obs);
        assert_eq!(obs.serves[0].3, lat + 1, "far_latency {lat}");
        assert_eq!(r.makespan, lat + 1);
    }
}

#[test]
fn hits_are_unaffected_by_far_latency() {
    let w = Workload::from_refs(vec![vec![0, 0, 0, 0]]);
    let mut obs = RecordingObserver::default();
    builder(4, 1, 5).run_with_observer(&w, &mut obs);
    // First serve pays the slow link; the rest are 1-tick hits.
    let responses: Vec<u64> = obs.serves.iter().map(|s| s.3).collect();
    assert_eq!(responses, vec![6, 1, 1, 1]);
}

#[test]
fn channel_occupied_for_full_transfer() {
    // Two cores, one channel, latency 3: the second fetch cannot start
    // until the first completes. Serves at t=3 and t=6.
    let w = Workload::from_refs(vec![vec![0], vec![0]]);
    let mut obs = RecordingObserver::default();
    let r = builder(8, 1, 3).run_with_observer(&w, &mut obs);
    let mut serve_ticks: Vec<u64> = obs.serves.iter().map(|s| s.0).collect();
    serve_ticks.sort_unstable();
    assert_eq!(serve_ticks, vec![3, 6]);
    assert_eq!(r.makespan, 7);
}

#[test]
fn extra_channels_hide_transfer_latency() {
    // With q = 2 and latency 3, both transfers overlap fully.
    let w = Workload::from_refs(vec![vec![0], vec![0]]);
    let r = builder(8, 2, 3).run(&w);
    assert_eq!(r.makespan, 4, "both land at t=2, served t=3");
}

#[test]
fn conservation_under_slow_link() {
    let traces: Vec<Vec<u32>> = (0..6)
        .map(|c| (0..50u32).map(|i| (i * 3 + c) % 20).collect())
        .collect();
    let w = Workload::from_refs(traces);
    for lat in [1u64, 2, 4] {
        for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
            let r = SimBuilder::new()
                .hbm_slots(16)
                .channels(2)
                .far_latency(lat)
                .arbitration(arb)
                .max_ticks(1_000_000)
                .run(&w);
            assert!(!r.truncated);
            assert_eq!(r.served, w.total_refs() as u64);
            assert_eq!(r.fetches, r.misses);
        }
    }
}

#[test]
fn makespan_monotone_in_far_latency() {
    let traces: Vec<Vec<u32>> = (0..8)
        .map(|c| (0..60u32).map(|i| (i * (c + 1)) % 24).collect())
        .collect();
    let w = Workload::from_refs(traces);
    let mut last = 0;
    for lat in [1u64, 2, 4, 8] {
        let r = builder(32, 2, lat).run(&w);
        assert!(r.makespan >= last, "latency {lat}: {} < {last}", r.makespan);
        last = r.makespan;
    }
}

#[test]
fn priority_still_beats_fifo_on_slow_links() {
    // The arbitration result is robust to the transfer-time model.
    let trace: Vec<u32> = (0..32).cycle().take(32 * 10).collect();
    let w = Workload::from_refs(vec![trace; 16]);
    let k = 16 * 32 / 4;
    let run = |arb| {
        SimBuilder::new()
            .hbm_slots(k)
            .channels(1)
            .far_latency(4)
            .arbitration(arb)
            .run(&w)
            .makespan
    };
    let fifo = run(ArbitrationKind::Fifo);
    let prio = run(ArbitrationKind::Priority);
    assert!(fifo > 2 * prio, "fifo {fifo} vs prio {prio}");
}
