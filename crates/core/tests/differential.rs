//! Differential conformance suite: `Engine` vs `OracleEngine`.
//!
//! The optimized [`hbm_core::Engine`] carries worklists, waiter maps, and
//! coalescing shortcuts; the [`hbm_core::OracleEngine`] is a literal,
//! full-scan transcription of the paper's five-step tick loop (DESIGN.md
//! §"The tick loop"). This suite drives both over the full policy
//! cross-product and requires **bit-identical** behaviour: same `Report`
//! (floats compared by bit pattern), same observer event streams, same
//! per-core response-time histograms.
//!
//! Layers:
//! 1. an exhaustive grid — every arbitration × replacement kind × several
//!    workload shapes × two parameter sets (288 cells);
//! 2. proptest-randomized cells that shrink failures to minimal workloads;
//! 3. metamorphic checks of paper invariants on *both* engines (hit
//!    response exactly 1 / miss ≥ 2, makespan monotone in `k` and `q`).
//!
//! Policy (see README.md §Conformance testing): every PR that optimizes
//! the engine must keep this suite green.

use hbm_core::testkit::{
    all_arbitrations, all_replacements, assert_conformance, check_conformance, conformance_grid,
    random_cell, run_engine, run_oracle,
};
use hbm_core::{ArbitrationKind, ReplacementKind, SimConfig, Workload};
use proptest::prelude::*;

/// The exhaustive policy grid: 9 arbitration kinds × 4 replacement kinds
/// × 4 workload shapes × 2 parameter sets = 288 cells, every one checked
/// for full Engine/OracleEngine agreement. This alone exceeds the
/// 256-cell floor the conformance harness promises. The grid itself lives
/// in [`hbm_core::testkit::conformance_grid`], shared with the bounds
/// interval test and the `hbm-model` calibration/validation suite.
#[test]
fn exhaustive_policy_grid() {
    let grid = conformance_grid();
    for cell in &grid {
        assert_conformance(cell.config, &cell.workload);
    }
    assert!(
        grid.len() >= 256,
        "grid ran {} cells, expected >= 256",
        grid.len()
    );
}

/// Seed-driven random cells across the entire generator space (all nine
/// arbitration kinds, all four replacement kinds, shared and disjoint
/// traces, p ≤ 6, k ≤ 16, q ≤ 4, far_latency ≤ 3).
#[test]
fn random_cells_conform() {
    for seed in 0..96 {
        let cell = random_cell(seed);
        assert_conformance(cell.config, &cell.workload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structured random cells where proptest owns the trace contents, so
    /// a divergence shrinks to a minimal workload (fewest cores, shortest
    /// traces, smallest page ids) rather than an opaque seed.
    #[test]
    fn engine_matches_oracle(
        traces in prop::collection::vec(prop::collection::vec(0u32..10, 0..24), 1..5),
        policy in (0usize..9, 0usize..4),
        k in 1usize..12,
        q in 1usize..4,
        timing in (1u64..4, 1u64..12),
        shared in 0usize..2,
        seed in 0u64..1024,
    ) {
        let (arb_i, rep_i) = policy;
        let (far_latency, period) = timing;
        let workload = if shared == 1 {
            Workload::shared_from_refs(traces)
        } else {
            Workload::from_refs(traces)
        };
        let config = SimConfig {
            hbm_slots: k,
            channels: q,
            arbitration: all_arbitrations(period)[arb_i],
            replacement: all_replacements()[rep_i],
            far_latency,
            seed,
            max_ticks: 100_000,
        };
        if let Err(msg) = check_conformance(config, &workload) {
            return Err(TestCaseError::fail(format!(
                "Engine and OracleEngine diverge: {msg}\nconfig: {config:?}"
            )));
        }
    }
}

// ---------------------------------------------------------------------------
// Large seeded cells: conformance at benchmark scale.
// ---------------------------------------------------------------------------

/// Deterministic trace mixing a cyclic sweep with a seeded xorshift jitter,
/// exactly `len` references over `pages` local pages. Unlike
/// [`random_workload`], the length is exact, so the large-cell tests can
/// guarantee their reference-count floor.
fn long_trace(seed: u64, pages: u32, len: usize) -> Vec<u32> {
    let mut x = seed | 1;
    (0..len)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x.is_multiple_of(4) {
                (x % pages as u64) as u32
            } else {
                (i as u32) % pages
            }
        })
        .collect()
}

/// Two cells at a scale the exhaustive grid and proptest layers never
/// reach (>= 10^5 references each), so index arithmetic, worklist
/// bookkeeping, and the waiter chains are exercised far past the
/// shrink-friendly sizes above.
///
/// Cell 1 — `k < p` corner: more cores than HBM slots, where the pinning
/// guard is load-bearing every tick (a victim must be skipped whenever
/// its page is about to be served) and the far queue stays saturated.
///
/// Cell 2 — shared universe with multiple channels and `far_latency > 1`,
/// so cross-core fetch coalescing and in-flight ordering run at scale.
#[test]
fn large_seeded_cells_conform() {
    // Cell 1: 8 disjoint cores x 13_000 refs = 104_000 references, k=5 < p=8.
    let w1 = Workload::from_refs(
        (0..8)
            .map(|c| long_trace(0xA11CE + c, 24, 13_000))
            .collect(),
    );
    assert!(w1.total_refs() >= 100_000, "cell 1 below the size floor");
    let c1 = SimConfig {
        hbm_slots: 5,
        channels: 1,
        arbitration: ArbitrationKind::Fifo,
        replacement: ReplacementKind::Lru,
        far_latency: 2,
        seed: 0xA11CE,
        max_ticks: 3_000_000,
    };
    let r1 = assert_conformance(c1, &w1);
    assert!(r1.served == 104_000, "cell 1 must run to completion");

    // Cell 2: 10 cores x 10_500 refs = 105_000 references over a shared
    // 40-page universe, k=16, q=3, far_latency=4, priority arbitration.
    let w2 = Workload::shared_from_refs(
        (0..10)
            .map(|c| long_trace(0xB0B0 + 7 * c, 40, 10_500))
            .collect(),
    );
    assert!(w2.total_refs() >= 100_000, "cell 2 below the size floor");
    let c2 = SimConfig {
        hbm_slots: 16,
        channels: 3,
        arbitration: ArbitrationKind::Priority,
        replacement: ReplacementKind::Lru,
        far_latency: 4,
        seed: 0xB0B0,
        max_ticks: 3_000_000,
    };
    let r2 = assert_conformance(c2, &w2);
    assert!(r2.served == 105_000, "cell 2 must run to completion");
}

// ---------------------------------------------------------------------------
// Metamorphic layer: paper invariants checked on BOTH engines.
// ---------------------------------------------------------------------------

/// Model §2: a hit is served in exactly 1 tick; a miss must wait for a
/// far transfer, so its response is at least 2. (Exactly 2 is reachable
/// even with `far_latency > 1`: a miss on a page whose fetch — issued
/// earlier by another core — lands the same tick is served one tick
/// later.) Checked on every serve event of both engines across a spread
/// of random cells.
#[test]
fn metamorphic_hit_one_miss_at_least_two() {
    let mut serves = 0usize;
    for seed in 100..164 {
        let cell = random_cell(seed);
        for (engine_name, obs) in [
            ("Engine", run_engine(cell.config, &cell.workload).1),
            ("OracleEngine", run_oracle(cell.config, &cell.workload).1),
        ] {
            for &(tick, core, _, response, hit) in &obs.serves {
                serves += 1;
                assert_eq!(
                    hit,
                    response == 1,
                    "{engine_name}: serve at tick {tick} core {core} has response {response} but hit={hit}"
                );
                assert!(
                    hit || response >= 2,
                    "{engine_name}: miss response {response} < 2"
                );
            }
        }
    }
    assert!(serves > 1000, "invariant exercised on only {serves} serves");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Makespan is monotone non-increasing in `k` for a single LRU core:
    /// LRU has the inclusion property, so a bigger HBM can only turn
    /// misses into hits, and with one core there is no interference to
    /// reorder anything. Exact, on both engines.
    #[test]
    fn metamorphic_makespan_monotone_in_k(
        refs in prop::collection::vec(0u32..8, 1..40),
        k in 1usize..10,
    ) {
        let w = Workload::from_refs(vec![refs]);
        let mk = |slots: usize| SimConfig {
            hbm_slots: slots,
            channels: 1,
            arbitration: ArbitrationKind::Fifo,
            replacement: ReplacementKind::Lru,
            far_latency: 1,
            seed: 0,
            max_ticks: 100_000,
        };
        let small_e = run_engine(mk(k), &w).0.makespan;
        let big_e = run_engine(mk(k + 1), &w).0.makespan;
        prop_assert!(big_e <= small_e, "Engine: k={k} makespan {small_e} < k+1 makespan {big_e}");
        let small_o = run_oracle(mk(k), &w).0.makespan;
        let big_o = run_oracle(mk(k + 1), &w).0.makespan;
        prop_assert!(big_o <= small_o, "OracleEngine: k={k} makespan {small_o} < k+1 makespan {big_o}");
        // And the two engines agree with each other (differential re-check).
        prop_assert_eq!(small_e, small_o);
        prop_assert_eq!(big_e, big_o);
    }

    /// Makespan is monotone non-increasing in `q` up to small-constant
    /// scheduling noise: extra far channels can only drain the miss queue
    /// faster, but timing shifts may perturb eviction order (a Belady-
    /// style anomaly), so multi-core monotonicity holds within a slack
    /// band rather than exactly. Checked on both engines.
    #[test]
    fn metamorphic_makespan_monotone_in_q(
        traces in prop::collection::vec(prop::collection::vec(0u32..6, 1..30), 2..5),
        rep_i in 0usize..4,
    ) {
        let w = Workload::from_refs(traces);
        let mk = |q: usize| SimConfig {
            hbm_slots: 6,
            channels: q,
            arbitration: ArbitrationKind::Fifo,
            replacement: all_replacements()[rep_i],
            far_latency: 1,
            seed: 7,
            max_ticks: 100_000,
        };
        type Runner = fn(SimConfig, &Workload) -> (hbm_core::Report, hbm_core::RecordingObserver);
        for (engine_name, runner) in [
            ("Engine", run_engine as Runner),
            ("OracleEngine", run_oracle as Runner),
        ] {
            let m1 = runner(mk(1), &w).0.makespan;
            let m4 = runner(mk(4), &w).0.makespan;
            prop_assert!(
                m4 <= m1 + m1 / 4 + 8,
                "{engine_name}: q=4 makespan {m4} vs q=1 {m1}"
            );
        }
    }
}
