//! Non-disjoint (shared-page) workloads — the paper's §6.1 future-work
//! extension. Page ids are global, so cores can contend for and share the
//! same pages; the engine coalesces concurrent far-channel requests.

use hbm_core::{ArbitrationKind, RecordingObserver, ReplacementKind, SimBuilder, Workload};

fn builder(k: usize, q: usize, arb: ArbitrationKind) -> SimBuilder {
    SimBuilder::new()
        .hbm_slots(k)
        .channels(q)
        .arbitration(arb)
        .replacement(ReplacementKind::Lru)
        .seed(7)
}

#[test]
fn same_id_is_the_same_page_when_shared() {
    // Two cores, both referencing page 0 three times.
    let shared = Workload::shared_from_refs(vec![vec![0, 0, 0], vec![0, 0, 0]]);
    let disjoint = Workload::from_refs(vec![vec![0, 0, 0], vec![0, 0, 0]]);
    assert_eq!(shared.total_unique_pages(), 1);
    assert_eq!(disjoint.total_unique_pages(), 2);

    let rs = builder(4, 1, ArbitrationKind::Fifo).run(&shared);
    let rd = builder(4, 1, ArbitrationKind::Fifo).run(&disjoint);
    // Shared: one fetch serves both cores' cold miss.
    let mut obs = RecordingObserver::default();
    builder(4, 1, ArbitrationKind::Fifo).run_with_observer(&shared, &mut obs);
    assert_eq!(obs.fetches.len(), 1, "coalesced into one far-channel fetch");
    assert_eq!(rs.served, 6);
    assert_eq!(rd.served, 6);
    // Both cores' first reference was a miss (each waited on the fetch).
    assert_eq!(rs.misses, 2);
    assert!(rs.makespan <= rd.makespan);
}

#[test]
fn one_cores_fetch_warms_the_other() {
    // Core 0 touches page 5 early; core 1 touches it later and must hit.
    let w = Workload::shared_from_refs(vec![vec![5, 1, 2, 3], vec![9, 9, 9, 5]]);
    let mut obs = RecordingObserver::default();
    let r = builder(16, 1, ArbitrationKind::Fifo).run_with_observer(&w, &mut obs);
    // Core 1's final reference to page 5 is a hit (fetched by core 0).
    let last_serve = obs
        .serves
        .iter()
        .rev()
        .find(|s| s.1 == 1)
        .expect("core 1 served");
    assert_eq!(last_serve.2 .0, 5);
    assert!(last_serve.4, "page 5 already resident: hit");
    assert_eq!(r.served, 8);
}

#[test]
fn coalesced_requests_all_serve_next_tick() {
    // Four cores all cold-miss the same page at t0: one fetch, four serves
    // at t1 (response 2 each).
    let w = Workload::shared_from_refs(vec![vec![42]; 4]);
    let mut obs = RecordingObserver::default();
    let r = builder(8, 1, ArbitrationKind::Priority).run_with_observer(&w, &mut obs);
    assert_eq!(obs.fetches.len(), 1);
    assert_eq!(r.served, 4);
    assert_eq!(r.makespan, 2);
    for s in &obs.serves {
        assert_eq!(s.0, 1, "all served at tick 1");
        assert_eq!(s.3, 2, "response time 2 (miss)");
    }
}

#[test]
fn shared_conservation_under_every_policy() {
    // Overlapping working sets with reuse, small HBM.
    let traces: Vec<Vec<u32>> = (0..6)
        .map(|c| (0..40u32).map(|i| (i * (c + 2)) % 16).collect())
        .collect();
    let w = Workload::shared_from_refs(traces);
    for arb in [
        ArbitrationKind::Fifo,
        ArbitrationKind::Priority,
        ArbitrationKind::DynamicPriority { period: 8 },
        ArbitrationKind::RandomPick,
        ArbitrationKind::FrFcfs { row_shift: 1 },
    ] {
        let r = builder(8, 2, arb).max_ticks(100_000).run(&w);
        assert!(!r.truncated, "{arb}");
        assert_eq!(r.served, w.total_refs() as u64, "{arb}");
        assert_eq!(r.hits + r.misses, r.served, "{arb}");
    }
}

#[test]
fn sharing_reduces_total_fetches_versus_disjoint() {
    // All cores walk the same global pages: the shared version fetches the
    // union once per eviction cycle while the disjoint version fetches per
    // core.
    let trace: Vec<u32> = (0..32).collect();
    let shared = Workload::shared_from_refs(vec![trace.clone(); 8]);
    let disjoint = Workload::from_refs(vec![trace; 8]);
    let k = 64;
    let mut obs_s = RecordingObserver::default();
    let mut obs_d = RecordingObserver::default();
    builder(k, 1, ArbitrationKind::Fifo).run_with_observer(&shared, &mut obs_s);
    builder(k, 1, ArbitrationKind::Fifo).run_with_observer(&disjoint, &mut obs_d);
    assert!(
        obs_s.fetches.len() * 4 < obs_d.fetches.len(),
        "shared {} vs disjoint {}",
        obs_s.fetches.len(),
        obs_d.fetches.len()
    );
}

#[test]
fn shared_mode_is_deterministic() {
    let traces: Vec<Vec<u32>> = (0..4)
        .map(|c| (0..60u32).map(|i| (i * 7 + c) % 24).collect())
        .collect();
    let w = Workload::shared_from_refs(traces);
    let run = || builder(12, 1, ArbitrationKind::DynamicPriority { period: 24 }).run(&w);
    let (a, b) = (run(), run());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.hits, b.hits);
}

#[test]
fn serde_roundtrip_preserves_shared_flag() {
    let w = Workload::shared_from_refs(vec![vec![1, 2], vec![2, 3]]);
    assert!(w.is_shared());
    let cloned = w.clone();
    assert!(cloned.is_shared());
    assert_eq!(cloned.total_unique_pages(), 3);
}
