//! Differential conformance suite under injected faults: `Engine` vs
//! `OracleEngine` with an active [`hbm_core::FaultPlan`].
//!
//! The fault-free differential suite (`differential.rs`) pins the two
//! engines to one canonical trajectory; this suite extends that contract
//! to *faulty machines*. The fast engine batches fault accounting across
//! its event-driven fast-forward spans (boundary-clamped), while the
//! oracle evaluates the plan literally every tick — so any drift in the
//! outage/degradation/transient semantics shows up as a bit-level
//! divergence here.
//!
//! Layers:
//! 1. a seeded grid of outage + degradation + transient cells across the
//!    policy space, including full outages (`q_eff = 0`) and the `k < p`
//!    pinning corner;
//! 2. proptest-randomized `(cell, plan)` pairs that shrink failures;
//! 3. the empty-plan identity: a run with an empty plan must be
//!    report- and event-identical to a plain run, and fault counters on
//!    fault-free runs must be all-zero.

use hbm_core::testkit::{
    all_arbitrations, all_replacements, assert_batch_conformance, assert_conformance_with_faults,
    check_batch_conformance, check_conformance_with_faults, compare_events, compare_reports,
    random_cell, random_fault_plan, random_workload, run_engine, run_engine_with_faults,
};
use hbm_core::{FaultEvent, FaultPlan, SimConfig, Workload};
use proptest::prelude::*;

/// Fault schedules for the seeded grid, chosen to hit each fault class
/// alone and in combination, plus the degenerate-but-valid extremes.
fn grid_plans() -> Vec<FaultPlan> {
    vec![
        // Single outage window narrower than q.
        FaultPlan::new().outage(3, 12, 1),
        // Full outage: q_eff drops to 0 no matter the machine width.
        FaultPlan::new().outage(5, 15, usize::MAX),
        // Back-to-back outages with a shared boundary.
        FaultPlan::new().outage(2, 6, 1).outage(6, 10, 2),
        // Degradation alone, overlapping pair.
        FaultPlan::new()
            .degradation(0, 20, 2)
            .degradation(10, 30, 3),
        // Transient failures at moderate and certain probability.
        FaultPlan::new().transient(0.5, 3, 0xfeed),
        FaultPlan::new().transient(1.0, 2, 7),
        // Everything at once.
        FaultPlan::new()
            .outage(4, 9, 1)
            .degradation(6, 18, 2)
            .transient(0.25, 4, 99),
    ]
}

/// Seeded fault grid: every arbitration kind × every plan shape × two
/// workload shapes (one with `k < p`), all bit-identical across engines.
#[test]
fn seeded_fault_grid() {
    let workloads = [
        random_workload(31, 4, 8, 20, false),
        // k < p: the pinning-guard corner must also hold under outages.
        Workload::from_refs(vec![vec![0, 1]; 6]),
    ];
    let ks = [8usize, 2];
    let mut cells = 0u32;
    for arbitration in all_arbitrations(5) {
        for plan in grid_plans() {
            for (wi, w) in workloads.iter().enumerate() {
                let config = SimConfig {
                    hbm_slots: ks[wi],
                    channels: 2,
                    arbitration,
                    replacement: all_replacements()[cells as usize % 4],
                    far_latency: 1 + (cells as u64 % 3),
                    seed: 0xfa_5eed ^ cells as u64,
                    max_ticks: 100_000,
                };
                assert_conformance_with_faults(config, plan.clone(), w);
                cells += 1;
            }
        }
    }
    assert!(cells >= 100, "grid ran {cells} cells, expected >= 100");
}

/// A full outage over the whole run: the machine stalls (blocked ticks
/// accumulate), then drains once the window lifts — identically in both
/// engines, with the blocked-tick counter agreeing with the window width.
#[test]
fn full_outage_blocks_then_drains() {
    let w = Workload::from_refs(vec![vec![0, 1, 2], vec![3, 4, 5]]);
    let plan = FaultPlan::new().outage(0, 50, usize::MAX);
    let config = SimConfig {
        hbm_slots: 8,
        max_ticks: 10_000,
        ..SimConfig::default()
    };
    let report = assert_conformance_with_faults(config, plan, &w);
    assert!(!report.truncated, "run must finish after the outage lifts");
    assert!(
        report.makespan > 50,
        "nothing can be served before tick 50 (makespan {})",
        report.makespan
    );
    assert!(
        report.faults.outage_blocked_ticks >= 49,
        "queued requests were blocked for most of the window (got {})",
        report.faults.outage_blocked_ticks
    );
}

/// Outage events fire exactly on the window boundaries, even when the
/// fast engine is fast-forwarding across an otherwise inert span.
#[test]
fn outage_events_fire_on_boundary_ticks() {
    let w = Workload::from_refs(vec![vec![0, 1, 2, 3]]);
    // far_latency 40 creates long inert spans; the outage sits inside one.
    let plan = FaultPlan::new().outage(10, 25, 1);
    let config = SimConfig {
        hbm_slots: 4,
        channels: 2,
        far_latency: 40,
        max_ticks: 100_000,
        ..SimConfig::default()
    };
    let (_, obs) = run_engine_with_faults(config, plan.clone(), &w);
    let starts: Vec<_> = obs
        .faults
        .iter()
        .filter(|(_, e)| matches!(e, FaultEvent::OutageStart { .. }))
        .collect();
    let ends: Vec<_> = obs
        .faults
        .iter()
        .filter(|(_, e)| matches!(e, FaultEvent::OutageEnd { .. }))
        .collect();
    assert_eq!(starts.len(), 1);
    assert_eq!(starts[0].0, 10, "start event on the boundary tick");
    assert_eq!(ends.len(), 1);
    assert_eq!(ends[0].0, 25, "end event on the boundary tick");
    assert_conformance_with_faults(config, plan, &w);
}

/// Certain transient failure with retry bound r multiplies every
/// transfer's latency by exactly (1 + r) — and still terminates.
#[test]
fn certain_transient_failure_terminates_via_retry_bound() {
    let w = Workload::from_refs(vec![vec![0, 1, 2, 3, 4]]);
    let plan = FaultPlan::new().transient(1.0, 3, 42);
    let config = SimConfig {
        hbm_slots: 8,
        max_ticks: 10_000,
        ..SimConfig::default()
    };
    let report = assert_conformance_with_faults(config, plan, &w);
    assert!(!report.truncated, "retry bound guarantees progress");
    assert_eq!(report.served, 5);
    assert_eq!(
        report.faults.transient_faults,
        5 * 3,
        "every fetch fails max_retries times at p = 1.0"
    );
}

/// Randomized `(cell, plan)` pairs over the whole generator space.
#[test]
fn random_faulty_cells_conform() {
    for seed in 0..48 {
        let cell = random_cell(seed);
        let plan = random_fault_plan(seed.wrapping_mul(0x9e37), 300);
        assert_conformance_with_faults(cell.config, plan, &cell.workload);
    }
}

/// The empty-plan identity on a fixed grid: running through the fault
/// path with no faults must be bit-identical — report, events, counters —
/// to the plain fault-free run.
#[test]
fn empty_plan_reproduces_fault_free_run() {
    for seed in 0..24 {
        let cell = random_cell(seed);
        let (plain_report, plain_obs) = run_engine(cell.config, &cell.workload);
        let (faulty_report, faulty_obs) =
            run_engine_with_faults(cell.config, FaultPlan::new(), &cell.workload);
        compare_reports(&faulty_report, &plain_report)
            .unwrap_or_else(|e| panic!("seed {seed}: empty-plan report drift: {e}"));
        compare_events(&faulty_obs, &plain_obs)
            .unwrap_or_else(|e| panic!("seed {seed}: empty-plan event drift: {e}"));
        assert!(
            plain_report.faults.is_zero(),
            "fault counters must be zero on fault-free runs"
        );
        assert!(
            faulty_obs.faults.is_empty(),
            "no fault events without a plan"
        );
    }
}

/// A plan scheduled entirely after the makespan changes nothing either.
#[test]
fn post_makespan_plan_is_inert() {
    let w = Workload::from_refs(vec![vec![0, 1, 0, 1], vec![2, 3]]);
    let config = SimConfig {
        hbm_slots: 8,
        ..SimConfig::default()
    };
    let (plain, _) = run_engine(config, &w);
    let late = plain.makespan + 100;
    let plan = FaultPlan::new()
        .outage(late, late + 10, 1)
        .degradation(late, late + 10, 5);
    let (faulty, obs) = run_engine_with_faults(config, plan.clone(), &w);
    compare_reports(&faulty, &plain).unwrap();
    assert!(faulty.faults.is_zero());
    assert!(obs.faults.is_empty());
    assert_conformance_with_faults(config, plan, &w);
}

// ---------------------------------------------------------------------------
// Lockstep axis: the same fault semantics through `BatchEngine`.
// ---------------------------------------------------------------------------

/// The seeded arbitration × fault-plan grid, batched: for each workload
/// shape, every (arbitration, plan) combination becomes one cell of a
/// single heterogeneous lockstep batch — cells diverge in outage windows,
/// degradations, transient models, policies, and far latencies, and every
/// one must stay bit-identical to both scalar engines.
#[test]
fn seeded_fault_grid_batched() {
    let workloads = [
        random_workload(31, 4, 8, 20, false),
        // k < p: the pinning-guard corner must also hold under outages.
        Workload::from_refs(vec![vec![0, 1]; 6]),
    ];
    let ks = [8usize, 2];
    let mut cells_run = 0usize;
    for (wi, w) in workloads.iter().enumerate() {
        let mut id = 0u64;
        let cells: Vec<(SimConfig, FaultPlan)> = all_arbitrations(5)
            .into_iter()
            .flat_map(|arbitration| {
                grid_plans()
                    .into_iter()
                    .map(move |plan| (arbitration, plan))
            })
            .map(|(arbitration, plan)| {
                let config = SimConfig {
                    hbm_slots: ks[wi],
                    channels: 2,
                    arbitration,
                    replacement: all_replacements()[id as usize % 4],
                    far_latency: 1 + (id % 3),
                    seed: 0xfa_5eed ^ id,
                    max_ticks: 100_000,
                };
                id += 1;
                (config, plan)
            })
            .collect();
        assert_eq!(cells.len(), 63, "9 arbitrations x 7 plan shapes");
        assert_batch_conformance(&cells, w);
        cells_run += cells.len();
    }
    assert!(cells_run >= 100, "ran {cells_run} cells, expected >= 100");
}

/// A full outage (`q_eff = 0` for the whole run's prefix) in exactly one
/// cell of a batch: that cell stalls and drains late while its
/// fault-free neighbours — including one with the *same* config — proceed
/// untouched, all bit-identical to their singleton scalar runs.
#[test]
fn full_outage_in_one_cell_only() {
    let w = Workload::from_refs(vec![vec![0, 1, 2], vec![3, 4, 5], vec![0, 2, 4]]);
    let config = SimConfig {
        hbm_slots: 8,
        channels: 2,
        max_ticks: 10_000,
        ..SimConfig::default()
    };
    let cells = vec![
        (config, FaultPlan::default()),
        (config, FaultPlan::new().outage(0, 60, usize::MAX)),
        (config, FaultPlan::default()),
        (config, FaultPlan::new().degradation(0, 30, 2)),
    ];
    let reports = assert_batch_conformance(&cells, &w);
    assert_eq!(
        reports[0].makespan, reports[2].makespan,
        "identical fault-free cells must agree"
    );
    assert!(
        reports[1].makespan > 60,
        "the outage cell can serve nothing before tick 60 (makespan {})",
        reports[1].makespan
    );
    assert!(
        reports[1].faults.outage_blocked_ticks >= 59,
        "blocked ticks accumulate only in the outage cell (got {})",
        reports[1].faults.outage_blocked_ticks
    );
    assert!(reports[0].faults.is_zero() && reports[2].faults.is_zero());
    assert!(reports[3].faults.degraded_fetches > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Heterogeneous per-cell fault plans over one workload, batched: any
    /// generated batch stays bit-identical to the scalar engines.
    #[test]
    fn prop_heterogeneous_fault_batches_conform(
        workload_seed in 0u64..1u64 << 32,
        plan_seeds in prop::collection::vec(0u64..1u64 << 32, 1..5),
    ) {
        let cell = random_cell(workload_seed);
        let cells: Vec<(SimConfig, FaultPlan)> = plan_seeds
            .iter()
            .map(|&s| (cell.config, random_fault_plan(s, 300)))
            .collect();
        if let Err(msg) = check_batch_conformance(&cells, &cell.workload) {
            prop_assert!(false, "lockstep fault divergence: {msg}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated `(cell, plan)` pair: engines agree bit for bit.
    #[test]
    fn prop_faulty_cells_conform(cell_seed in 0u64..1u64 << 48, plan_seed in 0u64..1u64 << 48) {
        let cell = random_cell(cell_seed);
        let plan = random_fault_plan(plan_seed, 400);
        if let Err(msg) = check_conformance_with_faults(cell.config, plan.clone(), &cell.workload) {
            prop_assert!(false, "divergence: {msg}\nplan: {plan:?}\nconfig: {:?}", cell.config);
        }
    }

    /// The empty-plan identity as a property over the cell space.
    #[test]
    fn prop_empty_plan_identity(seed in 0u64..1u64 << 48) {
        let cell = random_cell(seed);
        let (plain_report, plain_obs) = run_engine(cell.config, &cell.workload);
        let (faulty_report, faulty_obs) =
            run_engine_with_faults(cell.config, FaultPlan::new(), &cell.workload);
        prop_assert!(compare_reports(&faulty_report, &plain_report).is_ok());
        prop_assert!(compare_events(&faulty_obs, &plain_obs).is_ok());
        prop_assert!(plain_report.faults.is_zero());
    }
}
