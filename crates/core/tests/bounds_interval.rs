//! The bounds interval contract: on every cell of the conformance grid,
//! both engines' makespans land inside
//! `[makespan_lower_bound, makespan_upper_bound]`.
//!
//! This is what licenses `hbm-model` to clamp its analytical predictions
//! into the same interval — the clamp can only ever move a prediction
//! *toward* the simulator, never away from it. Random cells extend the
//! claim beyond the grid's two parameter sets.

use hbm_core::bounds::{makespan_lower_bound, makespan_upper_bound};
use hbm_core::testkit::{conformance_grid, random_cell, run_engine, run_oracle};

#[test]
fn conformance_grid_makespans_land_in_the_interval() {
    let grid = conformance_grid();
    assert!(grid.len() >= 256, "grid shrank to {} cells", grid.len());
    for cell in &grid {
        let c = cell.config;
        let lb = makespan_lower_bound(&cell.workload, c.hbm_slots, c.channels);
        let ub = makespan_upper_bound(&cell.workload, c.hbm_slots, c.channels, c.far_latency);
        let (engine, _) = run_engine(c, &cell.workload);
        let (oracle, _) = run_oracle(c, &cell.workload);
        for (name, r) in [("engine", &engine), ("oracle", &oracle)] {
            assert!(
                !r.truncated,
                "{name} truncated on {:?}/{:?} — interval claim needs full runs",
                c.arbitration, c.replacement
            );
            assert!(
                lb <= r.makespan && r.makespan <= ub,
                "{name} makespan {} outside [{lb}, {ub}] on {:?}/{:?} (k={}, q={}, far={})",
                r.makespan,
                c.arbitration,
                c.replacement,
                c.hbm_slots,
                c.channels,
                c.far_latency
            );
        }
    }
}

#[test]
fn random_cells_land_in_the_interval() {
    for seed in 0..128u64 {
        let cell = random_cell(seed);
        let c = cell.config;
        let lb = makespan_lower_bound(&cell.workload, c.hbm_slots, c.channels);
        let ub = makespan_upper_bound(&cell.workload, c.hbm_slots, c.channels, c.far_latency);
        let (report, _) = run_engine(c, &cell.workload);
        if report.truncated {
            continue; // budget cut the run short; the interval claim is void
        }
        assert!(
            lb <= report.makespan && report.makespan <= ub,
            "seed {seed}: makespan {} outside [{lb}, {ub}] ({:?}/{:?}, k={}, q={}, far={})",
            report.makespan,
            c.arbitration,
            c.replacement,
            c.hbm_slots,
            c.channels,
            c.far_latency
        );
    }
}
