//! Property tests for the priority-remap machinery (satellite of the
//! differential-oracle PR): after any sequence of remaps at ticks
//! `t ≡ 0 (mod T)`, the priority assignment must still be a permutation —
//! no duplicated ranks, no gaps — and the whole schedule must be a
//! deterministic function of the seed.

use hbm_core::arbitration::permute;
use hbm_core::arbitration::{ArbitrationPolicy, PriorityArbiter, RemapStrategy};
use hbm_core::rng::Xoshiro256;
use proptest::prelude::*;

const STRATEGIES: [RemapStrategy; 6] = [
    RemapStrategy::None,
    RemapStrategy::Random,
    RemapStrategy::Cycle,
    RemapStrategy::CycleReverse,
    RemapStrategy::Interleave,
    RemapStrategy::ExhaustiveSweep,
];

/// Drives `maybe_remap` over `ticks` consecutive ticks and returns the
/// permutation snapshot after every tick that actually remapped.
fn remap_history(
    p: usize,
    strategy: RemapStrategy,
    period: u64,
    seed: u64,
    ticks: u64,
) -> Vec<(u64, Vec<u32>)> {
    let mut a = PriorityArbiter::new(p, strategy, period, seed);
    let mut history = Vec::new();
    for t in 0..ticks {
        if a.maybe_remap(t) {
            history.push((t, a.permutation().to_vec()));
        }
    }
    history
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every remap, for every strategy, `pi` is a permutation of
    /// `0..p`: each rank appears exactly once (no duplicates, no gaps).
    #[test]
    fn remap_preserves_permutation(
        p in 1usize..32,
        strategy_i in 0usize..6,
        period in 1u64..16,
        seed in 0u64..1000,
    ) {
        let strategy = STRATEGIES[strategy_i];
        let history = remap_history(p, strategy, period, seed, 64);
        for (t, pi) in &history {
            prop_assert!(
                permute::is_permutation(pi),
                "{strategy:?}: pi after remap at tick {t} is not a permutation: {pi:?}"
            );
            // No duplicates/gaps, spelled out: sorting yields 0..p.
            let mut sorted = pi.clone();
            sorted.sort_unstable();
            let expected: Vec<u32> = (0..p as u32).collect();
            prop_assert_eq!(&sorted, &expected);
        }
        // Remaps fire exactly at multiples of the period (including 0).
        if strategy != RemapStrategy::None {
            let fired: Vec<u64> = history.iter().map(|&(t, _)| t).collect();
            let expected: Vec<u64> = (0..64).filter(|t| t % period == 0).collect();
            prop_assert_eq!(fired, expected);
        }
    }

    /// The entire remap schedule is a deterministic function of the seed:
    /// identical seeds give identical histories, and for the Random
    /// strategy on ≥ 2 cores, different seeds (almost surely) give
    /// different histories.
    #[test]
    fn remap_schedule_is_seed_deterministic(
        p in 2usize..24,
        strategy_i in 0usize..6,
        period in 1u64..8,
        seed in 0u64..1000,
    ) {
        let strategy = STRATEGIES[strategy_i];
        let a = remap_history(p, strategy, period, seed, 48);
        let b = remap_history(p, strategy, period, seed, 48);
        prop_assert_eq!(a, b, "same seed must reproduce the same schedule");
    }

    /// Different seeds decorrelate the Random strategy. A single remap of
    /// p ≥ 5 cores collides between two seeds with probability 1/p! —
    /// over 16 remaps this never happens for distinct seeds in practice,
    /// so a strict inequality is safe.
    #[test]
    fn random_remap_varies_with_seed(
        p in 5usize..24,
        seed in 0u64..1000,
    ) {
        let a = remap_history(p, RemapStrategy::Random, 1, seed, 16);
        let b = remap_history(p, RemapStrategy::Random, 1, seed + 1, 16);
        prop_assert_ne!(a, b, "distinct seeds must give distinct schedules");
    }

    /// The non-random strategies are pure functions of `pi` — the seed
    /// never enters — so their schedules are identical across seeds.
    #[test]
    fn deterministic_strategies_ignore_seed(
        p in 1usize..24,
        strategy_i in 0usize..6,
        seed in 0u64..1000,
    ) {
        let strategy = STRATEGIES[strategy_i];
        if strategy == RemapStrategy::Random {
            return Ok(());
        }
        let a = remap_history(p, strategy, 1, seed, 32);
        let b = remap_history(p, strategy, 1, seed.wrapping_add(12345), 32);
        prop_assert_eq!(a, b);
    }

    /// `priority_of` agrees with the permutation accessor for every core
    /// at every point of the schedule, and ranks cover `0..p` exactly.
    #[test]
    fn priority_of_matches_permutation(
        p in 1usize..24,
        strategy_i in 0usize..6,
        period in 1u64..8,
        seed in 0u64..1000,
    ) {
        let strategy = STRATEGIES[strategy_i];
        let mut a = PriorityArbiter::new(p, strategy, period, seed);
        for t in 0..32 {
            a.maybe_remap(t);
            let pi = a.permutation().to_vec();
            for (c, &rank) in pi.iter().enumerate() {
                prop_assert_eq!(a.priority_of(c as u32), Some(rank));
            }
            prop_assert_eq!(a.priority_of(p as u32), None);
        }
    }

    /// The raw permute kernels preserve permutation-ness and invert
    /// round-trips: the supporting algebra behind every remap strategy.
    #[test]
    fn permute_kernels_preserve_permutations(
        p in 1usize..64,
        seed in 0u64..1000,
        rounds in 1usize..8,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut pi = permute::identity(p);
        permute::randomize(&mut pi, &mut rng);
        for _ in 0..rounds {
            for kernel in [
                permute::cycle as fn(&mut [u32]),
                permute::cycle_reverse,
                permute::interleave,
            ] {
                kernel(&mut pi);
                prop_assert!(permute::is_permutation(&pi));
            }
            permute::next_permutation(&mut pi);
            prop_assert!(permute::is_permutation(&pi));
            let inv = permute::invert(&pi);
            prop_assert!(permute::is_permutation(&inv));
            prop_assert_eq!(&permute::invert(&inv), &pi, "invert must round-trip");
        }
    }
}
