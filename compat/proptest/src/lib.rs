//! Offline in-tree stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no network access and no
//! vendored registry, so the real `proptest` cannot be resolved. This crate
//! reimplements the subset of its API the workspace uses, with the same
//! semantics where they matter for the tests:
//!
//! - [`Strategy`] / [`ValueTree`] with genuine shrinking (binary search on
//!   numbers, element removal + recursive element shrinking on vectors,
//!   shrink-through-map on [`Map`]).
//! - The [`proptest!`] macro, [`ProptestConfig`], `prop_assert*!`,
//!   [`prop_oneof!`], [`Just`], [`any`], tuple strategies, integer and `f64`
//!   range strategies, and `prop::collection::vec`.
//! - Deterministic seeding derived from the test name, overridable with
//!   `PROPTEST_SEED`; case count overridable with `PROPTEST_CASES`.
//!
//! Failing cases are shrunk and reported with the minimal input found plus
//! the seed needed to replay the run.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64 seeding + xoshiro256**)
// ---------------------------------------------------------------------------

/// The RNG handed to strategies when generating a value tree.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Expands a 64-bit seed into the full generator state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TestRng { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..span` (`span > 0`), unbiased via rejection.
    pub fn gen_index(&mut self, span: u64) -> u64 {
        assert!(span > 0, "gen_index span must be positive");
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

/// A generated value plus the state needed to shrink it.
///
/// `simplify` moves toward a simpler value; `complicate` steps back toward
/// the last known-failing value after an over-aggressive simplification.
/// Both return `false` when no further movement is possible.
pub trait ValueTree {
    /// The value type produced.
    type Value: fmt::Debug;
    /// The current candidate value.
    fn current(&self) -> Self::Value;
    /// Attempts to make the current value simpler.
    fn simplify(&mut self) -> bool;
    /// Attempts to partially undo the last simplification.
    fn complicate(&mut self) -> bool;
}

/// A recipe for generating shrinkable values.
pub trait Strategy: Clone {
    /// The value type produced.
    type Value: fmt::Debug + Clone + 'static;
    /// The shrink-state type produced by [`Strategy::new_tree`].
    type Tree: ValueTree<Value = Self::Value>;

    /// Generates a fresh value tree from `rng`.
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree;

    /// Maps generated values through `f`, shrinking through the map.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: fmt::Debug + Clone + 'static,
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy for storage in heterogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(ObjStrategyImpl(self)))
    }
}

// ---------------------------------------------------------------------------
// Integer range strategies (binary-search shrinking toward the range start)
// ---------------------------------------------------------------------------

/// Shrink state for numeric strategies: binary search over `[min, hi]`
/// where `hi` is the smallest known-failing value.
#[derive(Debug, Clone)]
pub struct NumTree<T> {
    min: i128,
    curr: i128,
    hi: i128,
    _marker: std::marker::PhantomData<T>,
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl ValueTree for NumTree<$t> {
            type Value = $t;
            fn current(&self) -> $t {
                self.curr as $t
            }
            fn simplify(&mut self) -> bool {
                if self.curr == self.min {
                    return false;
                }
                self.hi = self.curr;
                self.curr = self.min + (self.curr - self.min) / 2;
                true
            }
            fn complicate(&mut self) -> bool {
                if self.curr >= self.hi {
                    return false;
                }
                // hi > curr here, so the difference is positive.
                let step = (self.hi - self.curr + 1) / 2;
                self.curr += step;
                true
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            type Tree = NumTree<$t>;
            fn new_tree(&self, rng: &mut TestRng) -> NumTree<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let pick = self.start as i128
                    + rng.gen_index(span.min(u64::MAX as u128) as u64) as i128;
                NumTree {
                    min: self.start as i128,
                    curr: pick,
                    hi: pick,
                    _marker: std::marker::PhantomData,
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            type Tree = NumTree<$t>;
            fn new_tree(&self, rng: &mut TestRng) -> NumTree<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let pick = if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i128-scale ranges:
                    // sample the low 64 bits uniformly.
                    lo as i128 + rng.next_u64() as i128
                } else {
                    lo as i128 + rng.gen_index(span as u64) as i128
                };
                NumTree {
                    min: lo as i128,
                    curr: pick,
                    hi: pick,
                    _marker: std::marker::PhantomData,
                }
            }
        }

        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )+};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// f64 range strategy
// ---------------------------------------------------------------------------

/// Shrink state for `f64` ranges: halving toward the range start with an
/// epsilon cutoff to guarantee termination.
#[derive(Debug, Clone)]
pub struct F64Tree {
    min: f64,
    curr: f64,
    hi: f64,
    eps: f64,
}

impl ValueTree for F64Tree {
    type Value = f64;
    fn current(&self) -> f64 {
        self.curr
    }
    fn simplify(&mut self) -> bool {
        if (self.curr - self.min).abs() <= self.eps {
            return false;
        }
        self.hi = self.curr;
        self.curr = self.min + (self.curr - self.min) / 2.0;
        true
    }
    fn complicate(&mut self) -> bool {
        if (self.hi - self.curr).abs() <= self.eps {
            return false;
        }
        self.curr += (self.hi - self.curr) / 2.0;
        true
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    type Tree = F64Tree;
    fn new_tree(&self, rng: &mut TestRng) -> F64Tree {
        assert!(self.start < self.end, "empty f64 range strategy");
        let pick = self.start + rng.gen_f64() * (self.end - self.start);
        F64Tree {
            min: self.start,
            curr: pick,
            hi: pick,
            eps: (self.end - self.start).abs() * 1e-6 + 1e-12,
        }
    }
}

// ---------------------------------------------------------------------------
// bool
// ---------------------------------------------------------------------------

/// Shrink state for `bool`: `true` simplifies to `false` once.
#[derive(Debug, Clone)]
pub struct BoolTree {
    curr: bool,
    orig: bool,
}

impl ValueTree for BoolTree {
    type Value = bool;
    fn current(&self) -> bool {
        self.curr
    }
    fn simplify(&mut self) -> bool {
        if self.curr {
            self.curr = false;
            true
        } else {
            false
        }
    }
    fn complicate(&mut self) -> bool {
        if !self.curr && self.orig {
            self.curr = true;
            true
        } else {
            false
        }
    }
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    type Tree = BoolTree;
    fn new_tree(&self, rng: &mut TestRng) -> BoolTree {
        let v = rng.next_u64() & 1 == 1;
        BoolTree { curr: v, orig: v }
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

// ---------------------------------------------------------------------------
// Just
// ---------------------------------------------------------------------------

/// A strategy that always yields one fixed value (no shrinking).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

/// Value tree for [`Just`].
#[derive(Debug, Clone)]
pub struct JustTree<T>(T);

impl<T: fmt::Debug + Clone> ValueTree for JustTree<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
    fn simplify(&mut self) -> bool {
        false
    }
    fn complicate(&mut self) -> bool {
        false
    }
}

impl<T: fmt::Debug + Clone + 'static> Strategy for Just<T> {
    type Value = T;
    type Tree = JustTree<T>;
    fn new_tree(&self, _rng: &mut TestRng) -> JustTree<T> {
        JustTree(self.0.clone())
    }
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

/// Value tree for [`Map`]: shrinks the inner tree, mapping on read.
pub struct MapTree<T, F> {
    inner: T,
    f: F,
}

impl<T, F, O> ValueTree for MapTree<T, F>
where
    T: ValueTree,
    F: Fn(T::Value) -> O,
    O: fmt::Debug,
{
    type Value = O;
    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }
    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }
    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
    O: fmt::Debug + Clone + 'static,
{
    type Value = O;
    type Tree = MapTree<S::Tree, F>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        MapTree {
            inner: self.source.new_tree(rng),
            f: self.f.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Boxed strategies + Union (prop_oneof!)
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub trait ObjTree<V> {
    fn obj_current(&self) -> V;
    fn obj_simplify(&mut self) -> bool;
    fn obj_complicate(&mut self) -> bool;
}

impl<T: ValueTree> ObjTree<T::Value> for T {
    fn obj_current(&self) -> T::Value {
        self.current()
    }
    fn obj_simplify(&mut self) -> bool {
        self.simplify()
    }
    fn obj_complicate(&mut self) -> bool {
        self.complicate()
    }
}

impl<V: fmt::Debug> ValueTree for Box<dyn ObjTree<V>> {
    type Value = V;
    fn current(&self) -> V {
        (**self).obj_current()
    }
    fn simplify(&mut self) -> bool {
        (**self).obj_simplify()
    }
    fn complicate(&mut self) -> bool {
        (**self).obj_complicate()
    }
}

trait ObjStrategy<V> {
    fn obj_new_tree(&self, rng: &mut TestRng) -> Box<dyn ObjTree<V>>;
}

struct ObjStrategyImpl<S>(S);

impl<S> ObjStrategy<S::Value> for ObjStrategyImpl<S>
where
    S: Strategy + 'static,
{
    fn obj_new_tree(&self, rng: &mut TestRng) -> Box<dyn ObjTree<S::Value>> {
        Box::new(self.0.new_tree(rng))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn ObjStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: fmt::Debug + Clone + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    type Tree = Box<dyn ObjTree<V>>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        self.0.obj_new_tree(rng)
    }
}

/// Uniform choice between alternative strategies ([`prop_oneof!`]).
///
/// Shrinking stays within the chosen branch.
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<V: fmt::Debug + Clone + 'static> Strategy for Union<V> {
    type Value = V;
    type Tree = Box<dyn ObjTree<V>>;
    fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
        let idx = rng.gen_index(self.0.len() as u64) as usize;
        self.0[idx].new_tree(rng)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($TreeName:ident; $(($T:ident, $t:ident, $i:expr)),+) => {
        /// Shrink state for a tuple strategy; components shrink left to
        /// right, `complicate` routes to the last-shrunk component.
        pub struct $TreeName<$($T),+> {
            $($t: $T,)+
            last: usize,
        }

        impl<$($T: ValueTree),+> ValueTree for $TreeName<$($T),+> {
            type Value = ($($T::Value,)+);
            fn current(&self) -> Self::Value {
                ($(self.$t.current(),)+)
            }
            fn simplify(&mut self) -> bool {
                $(
                    if self.$t.simplify() {
                        self.last = $i;
                        return true;
                    }
                )+
                false
            }
            fn complicate(&mut self) -> bool {
                $(
                    if self.last == $i {
                        return self.$t.complicate();
                    }
                )+
                false
            }
        }

        impl<$($T: Strategy),+> Strategy for ($($T,)+) {
            type Value = ($($T::Value,)+);
            type Tree = $TreeName<$($T::Tree),+>;
            fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
                let ($($t,)+) = self;
                $TreeName {
                    $($t: $t.new_tree(rng),)+
                    last: usize::MAX,
                }
            }
        }
    };
}

impl_tuple!(Tuple1Tree; (A, t0, 0));
impl_tuple!(Tuple2Tree; (A, t0, 0), (B, t1, 1));
impl_tuple!(Tuple3Tree; (A, t0, 0), (B, t1, 1), (C, t2, 2));
impl_tuple!(Tuple4Tree; (A, t0, 0), (B, t1, 1), (C, t2, 2), (D, t3, 3));
impl_tuple!(Tuple5Tree; (A, t0, 0), (B, t1, 1), (C, t2, 2), (D, t3, 3), (E, t4, 4));
impl_tuple!(Tuple6Tree; (A, t0, 0), (B, t1, 1), (C, t2, 2), (D, t3, 3), (E, t4, 4), (F, t5, 5));
impl_tuple!(Tuple7Tree; (A, t0, 0), (B, t1, 1), (C, t2, 2), (D, t3, 3), (E, t4, 4), (F, t5, 5), (G, t6, 6));
impl_tuple!(Tuple8Tree; (A, t0, 0), (B, t1, 1), (C, t2, 2), (D, t3, 3), (E, t4, 4), (F, t5, 5), (G, t6, 6), (H, t7, 7));

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// `prop::collection` — currently just [`collection::vec`].
pub mod collection {
    use super::*;
    use std::collections::BTreeSet;

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length.
        pub min: usize,
        /// Maximum length (inclusive).
        pub max_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths in the given range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with a length drawn from
    /// `size`. Shrinks by dropping elements (respecting the minimum
    /// length), then by shrinking individual elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum LastAction {
        None,
        Removed(usize),
        Shrunk(usize),
    }

    /// Shrink state for [`VecStrategy`].
    pub struct VecValueTree<T> {
        elems: Vec<T>,
        included: Vec<bool>,
        min_len: usize,
        rm_ptr: usize,
        el_ptr: usize,
        last: LastAction,
    }

    impl<T: ValueTree> VecValueTree<T> {
        fn live(&self) -> usize {
            self.included.iter().filter(|&&b| b).count()
        }
    }

    impl<T: ValueTree> ValueTree for VecValueTree<T> {
        type Value = Vec<T::Value>;

        fn current(&self) -> Self::Value {
            self.elems
                .iter()
                .zip(&self.included)
                .filter(|&(_, &inc)| inc)
                .map(|(e, _)| e.current())
                .collect()
        }

        fn simplify(&mut self) -> bool {
            while self.rm_ptr < self.elems.len() {
                let i = self.rm_ptr;
                self.rm_ptr += 1;
                if self.included[i] && self.live() > self.min_len {
                    self.included[i] = false;
                    self.last = LastAction::Removed(i);
                    return true;
                }
            }
            while self.el_ptr < self.elems.len() {
                let i = self.el_ptr;
                if self.included[i] && self.elems[i].simplify() {
                    self.last = LastAction::Shrunk(i);
                    return true;
                }
                self.el_ptr += 1;
            }
            false
        }

        fn complicate(&mut self) -> bool {
            match self.last {
                LastAction::Removed(i) => {
                    self.included[i] = true;
                    self.last = LastAction::None;
                    true
                }
                LastAction::Shrunk(i) => {
                    let moved = self.elems[i].complicate();
                    if !moved {
                        self.last = LastAction::None;
                    }
                    moved
                }
                LastAction::None => false,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        type Tree = VecValueTree<S::Tree>;
        fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
            let span = (self.size.max_incl - self.size.min + 1) as u64;
            let len = self.size.min + rng.gen_index(span) as usize;
            let elems: Vec<S::Tree> = (0..len).map(|_| self.element.new_tree(rng)).collect();
            let included = vec![true; len];
            VecValueTree {
                elems,
                included,
                min_len: self.size.min,
                rm_ptr: 0,
                el_ptr: 0,
                last: LastAction::None,
            }
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with sizes in the given range.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        inner: VecStrategy<S>,
        min: usize,
    }

    /// Generates sets of *distinct* values from `element` with a size drawn
    /// from `size`. Generation redraws until the deduplicated draw meets the
    /// minimum size; shrinking reuses the vec shrinker and rejects any step
    /// that would dedup the set below the minimum.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        let size = size.into();
        BTreeSetStrategy {
            inner: VecStrategy { element, size },
            min: size.min,
        }
    }

    /// Shrink state for [`BTreeSetStrategy`].
    pub struct BTreeSetValueTree<T: ValueTree> {
        inner: VecValueTree<T>,
        min: usize,
    }

    impl<T: ValueTree> BTreeSetValueTree<T>
    where
        T::Value: Ord,
    {
        fn set_len(&self) -> usize {
            self.inner
                .current()
                .into_iter()
                .collect::<BTreeSet<_>>()
                .len()
        }
    }

    impl<T: ValueTree> ValueTree for BTreeSetValueTree<T>
    where
        T::Value: Ord + Clone + fmt::Debug + 'static,
    {
        type Value = BTreeSet<T::Value>;

        fn current(&self) -> Self::Value {
            self.inner.current().into_iter().collect()
        }

        fn simplify(&mut self) -> bool {
            if !self.inner.simplify() {
                return false;
            }
            if self.set_len() < self.min {
                // Undo the step that collapsed duplicates below the minimum
                // and stop shrinking here (conservative but sound).
                let _ = self.inner.complicate();
                return false;
            }
            true
        }

        fn complicate(&mut self) -> bool {
            self.inner.complicate()
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        type Tree = BTreeSetValueTree<S::Tree>;
        fn new_tree(&self, rng: &mut TestRng) -> Self::Tree {
            for _ in 0..64 {
                let tree = self.inner.new_tree(rng);
                let distinct = tree.current().into_iter().collect::<BTreeSet<_>>().len();
                if distinct >= self.min {
                    return BTreeSetValueTree {
                        inner: tree,
                        min: self.min,
                    };
                }
            }
            panic!(
                "btree_set: element strategy cannot produce {} distinct values",
                self.min
            );
        }
    }
}

/// Namespace mirror of the real crate: `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical strategy, used by [`any`].
pub trait Arbitrary: fmt::Debug + Clone + 'static {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (e.g. `any::<bool>()`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

// ---------------------------------------------------------------------------
// Errors, config, runner
// ---------------------------------------------------------------------------

/// A test-case failure produced by the `prop_assert*!` macros (or a panic).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Upper bound on shrink iterations after a failure.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 4096,
        }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn run_case<V, F>(test: &F, value: V) -> Option<TestCaseError>
where
    V: fmt::Debug,
    F: Fn(V) -> Result<(), TestCaseError>,
{
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "test panicked".to_string());
            Some(TestCaseError::fail(format!("panic: {msg}")))
        }
    }
}

/// Drives one property test: generates `config.cases` inputs, and on the
/// first failure shrinks to a minimal failing input before panicking.
///
/// `PROPTEST_CASES` overrides the case count; `PROPTEST_SEED` fixes the
/// base seed (by default derived from the test name, so runs are
/// deterministic but distinct per test).
pub fn run_proptest<S, F>(config: &ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let cases: u32 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let base_seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(name));

    for case in 0..cases as u64 {
        let mut rng = TestRng::seed_from_u64(
            base_seed ^ (case.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let mut tree = strategy.new_tree(&mut rng);
        let Some(mut failure) = run_case(&test, tree.current()) else {
            continue;
        };
        let mut minimal = tree.current();
        let mut iters: u32 = 0;
        'shrink: while iters < config.max_shrink_iters {
            iters += 1;
            if !tree.simplify() {
                break;
            }
            match run_case(&test, tree.current()) {
                Some(f) => {
                    failure = f;
                    minimal = tree.current();
                }
                None => loop {
                    if iters >= config.max_shrink_iters {
                        break 'shrink;
                    }
                    iters += 1;
                    if !tree.complicate() {
                        break 'shrink;
                    }
                    if let Some(f) = run_case(&test, tree.current()) {
                        failure = f;
                        minimal = tree.current();
                        break;
                    }
                },
            }
        }
        panic!(
            "proptest `{name}` failed at case {case}/{cases} \
             (base seed {base_seed}; set PROPTEST_SEED={base_seed} to replay)\n\
             minimal failing input: {minimal:?}\n{failure}"
        );
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_proptest`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(config = $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(config = $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($s,)+);
            $crate::run_proptest(&config, stringify!($name), strategy, |($($p,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items!(config = $config; $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (and
/// triggering shrinking) rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left != *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among the listed strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The glob-import surface matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let t = (5u32..17).new_tree(&mut rng);
            let v = t.current();
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn shrink_finds_boundary() {
        // Property: x < 50. Fails for x >= 50; minimal counterexample is 50.
        let mut found = None;
        let strategy = 0u32..1000;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_proptest(
                &ProptestConfig::with_cases(64),
                "shrink_finds_boundary_inner",
                strategy,
                |x| {
                    if x >= 50 {
                        Err(TestCaseError::fail(format!("x = {x}")))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        if let Err(p) = result {
            let msg = p.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("minimal failing input: 50"),
                "expected shrink to 50, got: {msg}"
            );
            found = Some(());
        }
        assert!(found.is_some(), "property should have failed");
    }

    #[test]
    fn vec_shrinks_toward_minimal_length() {
        let strategy = collection::vec(0u32..100, 0..20);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_proptest(
                &ProptestConfig::with_cases(64),
                "vec_shrink_inner",
                strategy,
                |v: Vec<u32>| {
                    if v.len() >= 3 {
                        Err(TestCaseError::fail("too long"))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let p = result.expect_err("property should fail");
        let msg = p.downcast_ref::<String>().cloned().unwrap_or_default();
        // Minimal failing vec has exactly 3 elements, each shrunk to 0.
        assert!(
            msg.contains("[0, 0, 0]"),
            "expected minimal vec [0, 0, 0], got: {msg}"
        );
    }

    proptest! {
        #[test]
        fn macro_roundtrip(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_with_config(v in prop::collection::vec(0u8..10, 0..8)) {
            prop_assert!(v.len() < 8);
            for b in &v {
                prop_assert!(*b < 10);
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(
            kind in prop_oneof![Just(1u32), Just(2u32), 10u32..20],
            pair in (0u32..5, 0.1f64..0.9).prop_map(|(a, f)| (a * 2, f)),
        ) {
            prop_assert!(kind == 1 || kind == 2 || (10..20).contains(&kind));
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.1 > 0.0 && pair.1 < 1.0);
        }
    }
}
