//! Offline in-tree stand-in for `serde`.
//!
//! This workspace derives `Serialize`/`Deserialize` for documentation and
//! future wire formats but performs no runtime (de)serialization — results
//! are written as hand-rolled CSV. In an environment with no network and no
//! vendored registry the real crate cannot be resolved, so this stand-in
//! provides the same names: marker traits with blanket impls (so any
//! `T: Serialize` bound is satisfied) and the no-op derive macros from the
//! `serde_derive` stand-in.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// sized types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

/// Mirror of `serde::de` for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

#[cfg(feature = "serde_derive")]
pub use serde_derive::{Deserialize, Serialize};
