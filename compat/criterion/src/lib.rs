//! Offline in-tree stand-in for `criterion`.
//!
//! Bench targets in `crates/bench` keep the upstream criterion API so they
//! would compile unchanged against the real crate. This stand-in provides
//! that surface — `criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `Bencher::iter` — with a
//! deliberately small measurement loop: each benchmark runs a handful of
//! timed iterations and prints mean wall-clock time. It is a smoke-runner,
//! not a statistics engine; benches are tier-2 and never gate CI.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iteration driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `iters` calls of `f`, discarding return values via
    /// [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation (accepted and ignored by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            iters: 3,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("bench", &id.into(), 3, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Sample count hint; the stand-in maps it to a small iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 10);
        self
    }

    /// Records the per-iteration throughput (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.iters, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&self.name, &id, self.iters, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters,
        elapsed_ns: 0,
    };
    f(&mut b);
    let per_iter = b.elapsed_ns / u128::from(iters.max(1));
    println!("{group}/{} ... {per_iter} ns/iter ({iters} iters)", id.0);
}

/// Declares a benchmark group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2).throughput(Throughput::Elements(4));
        g.bench_function(BenchmarkId::new("sq", 4), |b| b.iter(|| 4u64 * 4));
        g.bench_with_input(BenchmarkId::from_parameter(9), &9u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }
}
