//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and report
//! types but never serializes at runtime (reports are written as CSV by
//! hand). These derives therefore only need to *parse*: they register the
//! `#[serde(...)]` helper attribute and expand to nothing. The blanket
//! impls in the companion `serde` stand-in keep any trait bounds satisfied.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
