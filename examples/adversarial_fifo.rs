//! The Figure 3 experiment end-to-end: watch FIFO collapse while Priority
//! stays near-optimal on the adversarial Dataset 3, and verify the paper's
//! claim that the gap grows linearly with thread count.
//!
//! ```text
//! cargo run --release --example adversarial_fifo
//! ```

use hbm::core::bounds::makespan_lower_bound;
use hbm::core::{ArbitrationKind, SimBuilder};
use hbm::traces::adversarial::{cyclic_workload, figure3_hbm_slots};

fn main() {
    let pages = 128u32;
    let reps = 25;
    println!("Dataset 3: cycle over {pages} pages, {reps} repetitions per core,");
    println!("HBM sized to 1/4 of the union of all cores' pages.\n");
    println!(
        "{:>4} | {:>12} {:>12} | {:>7} | {:>17}",
        "p", "FIFO", "Priority", "ratio", "Priority vs bound"
    );

    for p in [4usize, 8, 16, 32, 64] {
        let w = cyclic_workload(p, pages, reps);
        let k = figure3_hbm_slots(p, pages, 4);
        let run = |arb| {
            SimBuilder::new()
                .hbm_slots(k)
                .channels(1)
                .arbitration(arb)
                .run(&w)
        };
        let fifo = run(ArbitrationKind::Fifo);
        let prio = run(ArbitrationKind::Priority);
        let bound = makespan_lower_bound(&w, k, 1);
        println!(
            "{p:>4} | {:>12} {:>12} | {:>7.2} | {:>15.2}x",
            fifo.makespan,
            prio.makespan,
            fifo.makespan as f64 / prio.makespan as f64,
            prio.makespan as f64 / bound as f64,
        );
        assert_eq!(fifo.hits, 0, "FIFO re-evicts every page before reuse");
    }

    println!("\nFIFO never hits (every page is evicted before its reuse); its");
    println!("makespan is the full serialized miss stream, growing linearly in p.");
    println!("Priority's makespan stays within a small constant of the lower");
    println!("bound — Theorem 1's O(1)-competitiveness, with the constant visible.");
}
