//! Sorting study: instrumented GNU-sort traces under every arbitration
//! policy, plus a look at how the sorting algorithm itself changes the
//! page-access structure.
//!
//! ```text
//! cargo run --release --example sort_study
//! ```

use hbm::core::{ArbitrationKind, SimBuilder};
use hbm::traces::{SortAlgo, TraceOptions, WorkloadSpec};

fn main() {
    let opts = TraceOptions::default();

    // Part 1: trace anatomy per algorithm.
    println!("trace anatomy, sorting 8,000 integers (page = 4 KiB):");
    println!("{:>10} | {:>10} {:>10}", "algorithm", "page refs", "unique");
    for algo in SortAlgo::ALL {
        let t = hbm::traces::sort::sort_trace(algo, 8_000, 7, 4096, true);
        let mut u = t.clone();
        u.sort_unstable();
        u.dedup();
        println!("{algo:>10} | {:>10} {:>10}", t.len(), u.len());
    }

    // Part 2: policy shoot-out on the mergesort workload (the GNU
    // parallel-mode sort the paper instruments), 24 cores.
    let spec = WorkloadSpec::Sort {
        algo: SortAlgo::Mergesort,
        n: 6_000,
    };
    let p = 24;
    let w = spec.workload(p, 42, opts);
    let k = 2 * w.trace(0).unique_pages();
    println!("\n{p} cores sorting independently, k = {k} slots:");
    println!(
        "{:>22} | {:>10} | {:>13} | {:>9}",
        "policy", "makespan", "inconsistency", "mean resp"
    );
    let policies = [
        ArbitrationKind::Fifo,
        ArbitrationKind::FrFcfs { row_shift: 2 },
        ArbitrationKind::Priority,
        ArbitrationKind::DynamicPriority {
            period: 10 * k as u64,
        },
        ArbitrationKind::CyclePriority {
            period: 10 * k as u64,
        },
        ArbitrationKind::RandomPick,
    ];
    for arb in policies {
        let r = SimBuilder::new()
            .hbm_slots(k)
            .channels(1)
            .arbitration(arb)
            .seed(42)
            .run(&w);
        println!(
            "{:>22} | {:>10} | {:>13.1} | {:>9.2}",
            arb.label(),
            r.makespan,
            r.response.inconsistency,
            r.response.mean
        );
    }
}
