//! Tuning Dynamic Priority's remap interval T — the Figure 5 / Table 1
//! trade-off, interactively explorable.
//!
//! As T shrinks, inconsistency (response-time stddev) falls towards FIFO's
//! while makespan degrades towards random selection; as T grows, both
//! approach static Priority. The paper's recommendation — T ≥ 10k with a
//! wide flat region — is visible in the output.
//!
//! ```text
//! cargo run --release --example tuning_dynamic_priority
//! ```

use hbm::core::{ArbitrationKind, SimBuilder};
use hbm::traces::{TraceOptions, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::SpGemm {
        n: 100,
        density: 0.10,
    };
    let p = 24;
    let w = spec.workload(p, 42, TraceOptions::default());
    let k = 2 * w.trace(0).unique_pages();
    let run = |arb| {
        SimBuilder::new()
            .hbm_slots(k)
            .channels(1)
            .arbitration(arb)
            .seed(42)
            .run(&w)
    };

    println!("SpGEMM, p = {p}, k = {k} slots (two working sets)\n");
    println!(
        "{:>24} | {:>10} | {:>13} | {:>12}",
        "policy", "makespan", "inconsistency", "worst resp"
    );
    let fifo = run(ArbitrationKind::Fifo);
    println!(
        "{:>24} | {:>10} | {:>13.1} | {:>12}",
        "FIFO",
        fifo.makespan,
        fifo.response.inconsistency,
        fifo.worst_response()
    );
    for mult in [1u64, 2, 5, 10, 20, 50, 100] {
        let r = run(ArbitrationKind::DynamicPriority {
            period: mult * k as u64,
        });
        println!(
            "{:>24} | {:>10} | {:>13.1} | {:>12}",
            format!("Dynamic T = {mult}k"),
            r.makespan,
            r.response.inconsistency,
            r.worst_response()
        );
    }
    let prio = run(ArbitrationKind::Priority);
    println!(
        "{:>24} | {:>10} | {:>13.1} | {:>12}",
        "Priority (T = ∞)",
        prio.makespan,
        prio.response.inconsistency,
        prio.worst_response()
    );

    println!("\nReading the table: pick the smallest T whose makespan still");
    println!("matches Priority's — you keep the O(1)-competitive makespan and");
    println!("shed an order of magnitude of inconsistency (thread starvation).");
}
