//! Graph analytics under automatic HBM management: BFS and PageRank traces
//! (the workload family §1.3 cites as a headline HBM beneficiary) through
//! the policy zoo.
//!
//! Graph traversals are the classic irregular access pattern — almost no
//! spatial locality, reuse concentrated on hub pages — which makes them a
//! stress test the paper's kernels don't cover.
//!
//! ```text
//! cargo run --release --example graph_study
//! ```

use hbm::core::{ArbitrationKind, SimBuilder};
use hbm::traces::{TraceOptions, WorkloadSpec};

fn main() {
    let p = 24;
    for (name, spec) in [
        (
            "BFS (random graph, n=4000, deg=4)",
            WorkloadSpec::Bfs { n: 4000, degree: 4 },
        ),
        (
            "PageRank (power-law graph, n=2000, deg=4, 4 iters)",
            WorkloadSpec::PageRank {
                n: 2000,
                degree: 4,
                iters: 4,
            },
        ),
    ] {
        let w = spec.workload(p, 42, TraceOptions::default());
        let k = 2 * w.trace(0).unique_pages();
        println!(
            "\n{name}: {p} cores, {} refs/core, {} pages/core, k = {k}",
            w.trace(0).len(),
            w.trace(0).unique_pages()
        );
        println!(
            "{:>22} | {:>10} | {:>9} | {:>13}",
            "policy", "makespan", "hit rate", "inconsistency"
        );
        for arb in [
            ArbitrationKind::Fifo,
            ArbitrationKind::Priority,
            ArbitrationKind::DynamicPriority {
                period: 10 * k as u64,
            },
        ] {
            let r = SimBuilder::new()
                .hbm_slots(k)
                .channels(1)
                .arbitration(arb)
                .seed(42)
                .run(&w);
            println!(
                "{:>22} | {:>10} | {:>8.1}% | {:>13.1}",
                arb.label(),
                r.makespan,
                100.0 * r.hit_rate,
                r.response.inconsistency
            );
        }
    }
    println!("\nIrregular traversals still obey the paper's law: once the frontier");
    println!("working sets outgrow HBM, FIFO spreads capacity too thin while the");
    println!("priority family protects whole traversals at a time.");
}
