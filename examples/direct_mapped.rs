//! Lemma 1 live: run a real workload trace through (a) a fully-associative
//! LRU cache, (b) the paper's direct-mapped transformation, and (c) a
//! plain direct-mapped cache, and compare.
//!
//! ```text
//! cargo run --release --example direct_mapped
//! ```

use hbm::assoc::transform::{measure_overhead, Discipline};
use hbm::traces::{TraceOptions, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::SpGemm {
        n: 150,
        density: 0.10,
    };
    let trace = spec.generate_trace(42, TraceOptions::default());
    let stream: Vec<u64> = trace.iter().map(|&p| p as u64).collect();
    let k = 64;

    println!(
        "SpGEMM trace: {} page references over {} unique pages; cache k = {k}\n",
        stream.len(),
        {
            let mut u = trace.clone();
            u.sort_unstable();
            u.dedup();
            u.len()
        }
    );

    for discipline in [Discipline::Lru, Discipline::Fifo] {
        let o = measure_overhead(&stream, k, discipline, 7);
        println!("{discipline:?} replacement:");
        println!("  fully-associative misses : {}", o.reference_misses);
        println!(
            "  transformed misses       : {} (identical by construction)",
            o.transformed_misses
        );
        println!(
            "  far-channel transfers    : {:.2} per miss (fetch + write-back ≤ 2)",
            o.transfers_per_miss
        );
        println!(
            "  HBM accesses             : {:.2} per original access (O(1) expected)",
            o.accesses_per_access
        );
        println!(
            "  plain direct-mapped      : {} misses ({:.1}x the associative cache)\n",
            o.plain_direct_misses,
            o.plain_direct_misses as f64 / o.reference_misses.max(1) as f64
        );
    }

    println!("The transformation tracks the fully-associative cache exactly at a");
    println!("constant-factor cost, while naive direct mapping pays conflict");
    println!("misses — this is why Corollary 1 lets the paper's theory (stated");
    println!("for fully-associative HBM) apply to real direct-mapped hardware.");
}
