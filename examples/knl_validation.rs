//! The §5 validation experiments on the synthetic Knights Landing:
//! pointer-chasing latency (Figure 6 / Table 2a), GLUPS bandwidth
//! (Table 2b), and the four model properties P1–P4.
//!
//! ```text
//! cargo run --release --example knl_validation
//! ```

use hbm::knl::{bandwidth_sweep, latency_sweep, validate, Machine};

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

fn main() {
    let machine = Machine::knl();

    println!("pointer chasing (ns/op), 100k Monte Carlo hops per cell:");
    println!(
        "{:>8} | {:>10} {:>10} {:>10}",
        "array", "flat DRAM", "flat HBM", "cache"
    );
    let sizes: Vec<u64> = vec![16 * MIB, 256 * MIB, GIB, 8 * GIB, 16 * GIB, 64 * GIB];
    for row in latency_sweep(&machine, &sizes, 100_000, 7) {
        println!(
            "{:>8} | {:>10.1} {:>10} {:>10.1}",
            if row.bytes >= GIB {
                format!("{}GiB", row.bytes / GIB)
            } else {
                format!("{}MiB", row.bytes / MIB)
            },
            row.dram_ns,
            row.hbm_ns
                .map_or("   (n/a)".to_string(), |v| format!("{v:.1}")),
            row.cache_ns,
        );
    }

    println!("\nGLUPS bandwidth (MiB/s), 272 threads:");
    println!(
        "{:>8} | {:>10} {:>10} {:>10}",
        "array", "flat DRAM", "flat HBM", "cache"
    );
    let bw_sizes: Vec<u64> = vec![GIB, 8 * GIB, 16 * GIB, 32 * GIB, 64 * GIB];
    for row in bandwidth_sweep(&machine, &bw_sizes, 100_000, 7) {
        println!(
            "{:>8} | {:>10.0} {:>10} {:>10.0}",
            format!("{}GiB", row.bytes / GIB),
            row.dram_mibs,
            row.hbm_mibs
                .map_or("   (n/a)".to_string(), |v| format!("{v:.0}")),
            row.cache_mibs,
        );
    }

    println!("\nmodel properties (§5):");
    let report = validate(&machine);
    for c in &report.checks {
        println!(
            "  P{} {} — measured {:.2} -> {}",
            c.id,
            c.statement,
            c.measured,
            if c.holds { "HOLDS" } else { "FAILS" }
        );
    }
    assert!(report.all_hold());
    println!("\nAll four properties hold: the synthetic KNL behaves like the");
    println!("machine the paper measured, so the HBM+DRAM model's assumptions");
    println!("are exercised the same way.");
}
