//! Non-disjoint access sequences — the paper's first future-work item
//! (§6.1) — implemented and measured: `p` cores each multiply a private
//! sparse matrix `A_i` against one *shared* B. B's pages carry the same
//! global ids on every core, so a single far-channel fetch warms B for
//! everyone.
//!
//! ```text
//! cargo run --release --example shared_spgemm
//! ```

use hbm::core::{ArbitrationKind, SimBuilder, Workload};
use hbm::traces::spgemm::spgemm_shared_workload;

fn main() {
    let p = 16;
    let n = 80;
    let shared = spgemm_shared_workload(p, n, 0.10, 42, 4096, true);
    // Control: identical traces, but page ids private per core (the
    // paper's disjoint Property 1).
    let disjoint = Workload::from_refs(
        shared
            .traces()
            .iter()
            .map(|t| t.as_slice().to_vec())
            .collect(),
    );

    println!(
        "{p} cores x SpGEMM(A_i, shared B), n = {n}: {} refs/core",
        shared.trace(0).len()
    );
    println!(
        "unique pages: shared workload {} vs disjoint control {}\n",
        shared.total_unique_pages(),
        disjoint.total_unique_pages()
    );

    // HBM sized to half the disjoint footprint: contended for the control,
    // roomier for the sharing version.
    let k = disjoint.total_unique_pages() / 2;
    println!("HBM k = {k} slots, q = 1 far channel\n");
    println!(
        "{:>10} | {:>10} {:>9} {:>9} | {:>10} {:>9} {:>9}",
        "", "disjoint", "", "", "shared", "", ""
    );
    println!(
        "{:>10} | {:>10} {:>9} {:>9} | {:>10} {:>9} {:>9}",
        "policy", "makespan", "fetches", "hit rate", "makespan", "fetches", "hit rate"
    );
    for arb in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
        let run = |w: &Workload| {
            SimBuilder::new()
                .hbm_slots(k)
                .channels(1)
                .arbitration(arb)
                .seed(1)
                .run(w)
        };
        let d = run(&disjoint);
        let s = run(&shared);
        println!(
            "{:>10} | {:>10} {:>9} {:>8.1}% | {:>10} {:>9} {:>8.1}%",
            arb.label(),
            d.makespan,
            d.fetches,
            100.0 * d.hit_rate,
            s.makespan,
            s.fetches,
            100.0 * s.hit_rate
        );
    }
    println!("\nSharing B shrinks the far-channel traffic (fetches) and the");
    println!("makespan for both policies: requests for an in-flight shared page");
    println!("coalesce into one fetch, and one core's miss warms B for all.");
}
