//! SpGEMM study: the workload the paper's introduction motivates.
//!
//! Generates TACO-style sparse matrix-matrix multiplication traces (one
//! independent instance per core, §3.2 Dataset 2), then shows how the
//! choice of far-channel arbitration changes makespan as the core count
//! grows — a miniature Figure 2a.
//!
//! ```text
//! cargo run --release --example spgemm_study
//! ```

use hbm::core::{ArbitrationKind, SimBuilder};
use hbm::traces::{TraceOptions, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::SpGemm {
        n: 120,
        density: 0.10,
    };
    let opts = TraceOptions::default();

    // Measure one core's working set and size HBM at two working sets, the
    // contended regime of the paper's evaluation.
    let probe = spec.generate_trace(1, opts);
    let mut uniq = probe.clone();
    uniq.sort_unstable();
    uniq.dedup();
    let k = 2 * uniq.len();
    println!(
        "per-core working set ≈ {} pages; HBM k = {k} slots\n",
        uniq.len()
    );
    println!(
        "{:>4} | {:>12} {:>12} {:>12} | {:>7}",
        "p", "FIFO", "Priority", "Dynamic", "F/P"
    );

    for p in [2usize, 8, 16, 32, 48] {
        let w = spec.workload(p, 42, opts);
        let run = |arb| {
            SimBuilder::new()
                .hbm_slots(k)
                .channels(1)
                .arbitration(arb)
                .seed(42)
                .run(&w)
                .makespan
        };
        let fifo = run(ArbitrationKind::Fifo);
        let prio = run(ArbitrationKind::Priority);
        let dynamic = run(ArbitrationKind::DynamicPriority {
            period: 10 * k as u64,
        });
        println!(
            "{p:>4} | {fifo:>12} {prio:>12} {dynamic:>12} | {:>7.2}",
            fifo as f64 / prio as f64
        );
    }
    println!("\nAt low p the policies tie; past the contention knee FIFO thrashes");
    println!("(\"butter scraped over too much bread\") while Priority protects");
    println!("whole working sets. Dynamic Priority matches the winner everywhere.");
}
