//! Quickstart: simulate the HBM+DRAM model in ten lines.
//!
//! Builds a tiny workload, runs it under FIFO and Priority far-channel
//! arbitration, and prints the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hbm::core::{ArbitrationKind, ReplacementKind, SimBuilder, Workload};

fn main() {
    // Eight cores, each cycling over 64 private pages ten times, with an
    // HBM that holds only a quarter of the union — the paper's §3.2
    // FIFO-killer in miniature.
    let workload = hbm::traces::adversarial::cyclic_workload(8, 64, 10);
    let k = hbm::traces::adversarial::figure3_hbm_slots(8, 64, 4);

    for arbitration in [ArbitrationKind::Fifo, ArbitrationKind::Priority] {
        let report = SimBuilder::new()
            .hbm_slots(k)
            .channels(1)
            .arbitration(arbitration)
            .replacement(ReplacementKind::Lru)
            .seed(42)
            .run(&workload);
        println!(
            "{:<10} makespan = {:>8} ticks | hit rate = {:>5.1}% | inconsistency = {:>8.1}",
            arbitration.label(),
            report.makespan,
            100.0 * report.hit_rate,
            report.response.inconsistency,
        );
    }

    // Custom workloads are plain per-core page sequences:
    let custom = Workload::from_refs(vec![vec![0, 1, 0, 1, 2], vec![5, 5, 5]]);
    let r = SimBuilder::new().hbm_slots(4).run(&custom);
    println!(
        "custom workload: served {} requests in {} ticks",
        r.served, r.makespan
    );
}
